//! Structure-sharing state storage: hash-consed component arenas.
//!
//! A machine configuration is mostly *unchanged* context: firing one rule
//! rewrites one processor's private state and occasionally the shared
//! memory, while every other component survives verbatim. Storing each
//! visited state as a full clone therefore duplicates the same per-proc
//! states and memory maps thousands of times, and hashing a candidate
//! successor re-hashes all of that unchanged context on every expansion.
//!
//! [`ComponentArena`] splits a [`ComposedState`] into its components — the
//! shared memory and one entry per processor — and hash-conses each
//! component into its own arena. An interned state is then a flat row of
//! `u32` component ids: state equality and hashing collapse to comparing
//! `1 + #procs` integers, deduplicating a successor against its parent
//! skips every component that is pointer-for-pointer identical context
//! (the common case: one changed proc), and the heap holds each distinct
//! component exactly once no matter how many states share it.
//!
//! Under memory pressure the id-row table is *segmented*: the oldest rows
//! can be spilled to CRC-framed disk segments ([`crate::spill`]) while the
//! hash index keeps covering every slot, so spilled states still
//! deduplicate — a cold row is only re-read when a hash collision forces a
//! full comparison or a spilled frontier entry is expanded. Methods that
//! may touch cold rows are fallible: a lost or injected-faulty segment
//! surfaces as a [`SpillError`] the explorer degrades on, never a panic.
//!
//! The arena reports its sharing through [`ArenaOccupancy`]: how many
//! distinct components back how many states, and the bytes actually
//! interned — the numbers `perf_snapshot` publishes per test.

use std::hash::{BuildHasher, Hash};
use std::path::Path;

use rustc_hash::{FxBuildHasher, FxHashMap};

use crate::codec;
use crate::explore::{Bucket, InternedStates};
use crate::machine::Action;
use crate::spill::{SpillError, SpillStore};

/// The components a transition (or a compressed chain of transitions) may
/// have modified, derived from [`Action`] labels: the acting thread's
/// private component, plus the shared memory for memory-writing kinds.
///
/// Under the `LabeledMachine` contract ("private effects are private") a
/// rule firing mutates nothing else, so the explorer can reuse the
/// parent's component ids for everything outside the mask without even an
/// equality check. Debug builds verify the contract per intern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Touched {
    /// Bitmask of touched processor indices (`u32::MAX` = assume all).
    procs: u32,
    mem: bool,
}

impl Touched {
    /// The components one rule firing may touch.
    pub(crate) fn from_action(action: &Action) -> Self {
        if action.thread >= 32 {
            return Touched { procs: u32::MAX, mem: true };
        }
        Touched { procs: 1 << action.thread, mem: action.kind.writes_memory() }
    }

    /// Widens the mask by another rule firing (chain compression).
    pub(crate) fn add_action(&mut self, action: &Action) {
        if action.thread >= 32 {
            self.procs = u32::MAX;
            self.mem = true;
            return;
        }
        self.procs |= 1 << action.thread;
        self.mem |= action.kind.writes_memory();
    }

    fn touches_proc(self, index: usize) -> bool {
        index >= 32 || self.procs & (1 << index) != 0
    }
}

/// A machine state that splits into internable components: the shared
/// memory plus one private component per processor.
///
/// The component count must be constant across every state of one machine
/// (litmus machines have a fixed processor count), and two states must be
/// equal exactly when all their components are equal — which holds by
/// construction for states that are plain structs of their components.
pub trait ComposedState: Clone + Eq + Hash {
    /// The shared-memory component.
    type Mem: Clone + Eq + Hash;
    /// One processor's private component.
    type Proc: Clone + Eq + Hash;

    /// The shared-memory component.
    fn memory(&self) -> &Self::Mem;
    /// Mutable access for [`ComponentArena::load`]'s `clone_from` reuse.
    fn memory_mut(&mut self) -> &mut Self::Mem;
    /// The per-processor components.
    fn procs(&self) -> &[Self::Proc];
    /// Mutable access for [`ComponentArena::load`]'s `clone_from` reuse.
    fn procs_mut(&mut self) -> &mut [Self::Proc];

    /// Approximate bytes a distinct memory component occupies once interned.
    fn mem_bytes(mem: &Self::Mem) -> usize;
    /// Approximate bytes a distinct proc component occupies once interned.
    fn proc_bytes(proc: &Self::Proc) -> usize;

    /// Serializes a memory component for an intra-exploration checkpoint
    /// snapshot. Must be the exact inverse of [`ComposedState::decode_mem`].
    fn encode_mem(mem: &Self::Mem, out: &mut Vec<u8>);
    /// Deserializes a memory component from the front of `input`, returning
    /// `None` on truncated or malformed bytes.
    fn decode_mem(input: &mut &[u8]) -> Option<Self::Mem>;
    /// Serializes a proc component (see [`ComposedState::encode_mem`]).
    fn encode_proc(proc: &Self::Proc, out: &mut Vec<u8>);
    /// Deserializes a proc component (see [`ComposedState::decode_mem`]).
    fn decode_proc(input: &mut &[u8]) -> Option<Self::Proc>;
}

/// Sharing statistics of a [`ComponentArena`] (or, degenerately, of a plain
/// full-state arena), reported through `Exploration` and `perf_snapshot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaOccupancy {
    /// Interned states (equals `Exploration::states_visited` at the end).
    pub states: usize,
    /// Distinct shared-memory components backing those states.
    pub distinct_memories: usize,
    /// Distinct per-processor components backing those states (all
    /// processor positions share one arena).
    pub distinct_procs: usize,
    /// Approximate bytes held by the interned components plus the id table
    /// (resident and spilled rows alike) — the peak, since arenas only grow.
    pub interned_bytes: usize,
}

impl ArenaOccupancy {
    /// Distinct components of any kind.
    #[must_use]
    pub fn distinct_components(&self) -> usize {
        self.distinct_memories + self.distinct_procs
    }
}

/// A hash-consing state arena over [`ComposedState`] components.
///
/// Each distinct memory and proc component is stored once; a state is a
/// row of `1 + num_procs` component ids in a flat table, deduplicated
/// through a row-hash index. Successor interning takes the parent's row as
/// the starting point, so components the successor shares with its parent
/// are recognized by one equality check — no hashing, no cloning.
///
/// With a [`SpillStore`] armed, rows `[0, spilled_rows)` live on disk and
/// `ids` holds only the resident tail; slot numbering is global and stable,
/// so the hash index and every frontier slot survive a spill unchanged.
#[derive(Debug)]
pub(crate) struct ComponentArena<S: ComposedState> {
    mems: InternedStates<S::Mem>,
    procs: InternedStates<S::Proc>,
    /// Flat id table of the *resident* rows: state `slot` owns
    /// `ids[(slot - spilled_rows) * stride ..][..stride]`, laid out as
    /// `[mem_id, proc0_id, proc1_id, ...]`.
    ids: Vec<u32>,
    stride: usize,
    by_hash: FxHashMap<u64, Bucket>,
    hasher: FxBuildHasher,
    /// Row under construction (kept to avoid re-allocating per intern).
    scratch: Vec<u32>,
    /// Reload buffer for cold-row comparisons (disjoint from `scratch`).
    cold_buf: Vec<u32>,
    component_bytes: usize,
    /// Rows spilled to disk; slots below this are cold.
    spilled_rows: usize,
    spill: Option<SpillStore>,
}

impl<S: ComposedState> ComponentArena<S> {
    /// An empty arena for machines with `num_procs` processors.
    pub(crate) fn new(num_procs: usize) -> Self {
        ComponentArena {
            mems: InternedStates::default(),
            procs: InternedStates::default(),
            ids: Vec::new(),
            stride: 1 + num_procs,
            by_hash: FxHashMap::default(),
            hasher: FxBuildHasher::default(),
            scratch: Vec::with_capacity(1 + num_procs),
            cold_buf: Vec::with_capacity(1 + num_procs),
            component_bytes: 0,
            spilled_rows: 0,
            spill: None,
        }
    }

    /// Number of interned states (resident and spilled).
    pub(crate) fn len(&self) -> usize {
        self.spilled_rows + self.ids.len() / self.stride
    }

    /// Number of rows still resident in RAM.
    pub(crate) fn resident_rows(&self) -> usize {
        self.ids.len() / self.stride
    }

    /// The resident row of `slot`. Panics on a cold slot (tests and
    /// spill-free paths only).
    fn row(&self, slot: u32) -> &[u32] {
        let resident = slot as usize - self.spilled_rows;
        let start = resident * self.stride;
        &self.ids[start..start + self.stride]
    }

    /// Arms spill-to-disk for cold rows. The store's existing rows (a
    /// checkpoint-resume manifest) must match what this arena already
    /// counts as spilled.
    pub(crate) fn arm_spill(&mut self, store: SpillStore) {
        debug_assert_eq!(store.rows(), self.spilled_rows, "manifest matches spilled rows");
        self.spill = Some(store);
    }

    /// Is a spill store armed (and usable)?
    pub(crate) fn spill_armed(&self) -> bool {
        self.spill.is_some()
    }

    /// Drops the spill store after a write failure: already-spilled rows
    /// stay readable through it, so this is only legal while nothing has
    /// been spilled yet.
    pub(crate) fn disarm_spill(&mut self) {
        if self.spilled_rows == 0 {
            self.spill = None;
        }
    }

    /// `(bytes on disk, segment files)` of the spill layer.
    pub(crate) fn spill_stats(&self) -> (usize, usize) {
        (
            self.spilled_rows * self.stride * std::mem::size_of::<u32>(),
            self.spill.as_ref().map_or(0, SpillStore::segment_count),
        )
    }

    /// Live memory accounting: `(component bytes, resident id-table bytes,
    /// hash-index bytes)`. Deterministic for a fixed exploration sequence —
    /// the budget ladder and its tests rely on that, which is why the index
    /// estimate uses entry counts rather than table capacity (capacity is
    /// not reproducible across a checkpoint resume).
    pub(crate) fn account(&self) -> (usize, usize, usize) {
        let index = self.by_hash.len()
            * (std::mem::size_of::<(u64, Bucket)>() + std::mem::size_of::<u64>());
        (self.component_bytes, self.ids.len() * std::mem::size_of::<u32>(), index)
    }

    /// Spills up to `rows` of the oldest resident rows into one new disk
    /// segment, returning the bytes moved. A write failure (including the
    /// `spill.write` fault point) leaves every row resident and the arena
    /// fully usable; the caller should disable further spilling.
    pub(crate) fn spill_oldest(&mut self, rows: usize) -> Result<usize, SpillError> {
        let rows = rows.min(self.resident_rows());
        if rows == 0 {
            return Ok(0);
        }
        let words = rows * self.stride;
        let ComponentArena { ids, spill, .. } = self;
        let store = spill
            .as_mut()
            .ok_or_else(|| SpillError { message: "no spill store armed".to_string() })?;
        store.write_segment(&ids[..words])?;
        self.ids.drain(..words);
        self.spilled_rows += rows;
        Ok(words * std::mem::size_of::<u32>())
    }

    /// The spill manifest for a checkpoint snapshot.
    fn spill_manifest(&self) -> Vec<(String, usize)> {
        self.spill.as_ref().map(SpillStore::manifest).unwrap_or_default()
    }

    /// Fills `scratch` with the row of `slot`, reloading a cold row from
    /// disk when necessary.
    fn fill_scratch_from(&mut self, slot: u32) -> Result<(), SpillError> {
        if (slot as usize) < self.spilled_rows {
            let ComponentArena { scratch, spill, .. } = self;
            let store = spill.as_mut().expect("a cold slot implies an armed spill store");
            store.read_row(slot as usize, scratch)?;
        } else {
            let start = (slot as usize - self.spilled_rows) * self.stride;
            let ComponentArena { ids, scratch, stride, .. } = self;
            scratch.clear();
            scratch.extend_from_slice(&ids[start..start + *stride]);
        }
        Ok(())
    }

    /// Interns every component of `state` unconditionally (the initial
    /// state, which has no parent to share with) and returns its slot.
    pub(crate) fn intern_root(&mut self, state: &S) -> u32 {
        debug_assert_eq!(self.len(), 0, "the root is interned first");
        self.scratch.clear();
        let (mem_id, mem_new) = self.mems.intern_ref(state.memory());
        if mem_new {
            self.component_bytes += S::mem_bytes(state.memory());
        }
        self.scratch.push(mem_id);
        for proc in state.procs() {
            let (proc_id, proc_new) = self.procs.intern_ref(proc);
            if proc_new {
                self.component_bytes += S::proc_bytes(proc);
            }
            self.scratch.push(proc_id);
        }
        let (slot, _) = self.intern_scratch_row().expect("an empty arena has no cold rows");
        slot
    }

    /// Interns a successor of the state at `parent`, returning its slot and
    /// whether it is new. Components equal to the parent's are recognized
    /// by one equality check against the parent's interned component and
    /// reuse its id without hashing or cloning anything.
    ///
    /// The production drivers use the label-directed
    /// [`ComponentArena::intern_touched`] instead; this comparison-based
    /// form stays as the test surface for the sharing machinery itself.
    #[cfg(test)]
    pub(crate) fn intern(&mut self, state: &S, parent: u32) -> Result<(u32, bool), SpillError> {
        debug_assert_eq!(state.procs().len() + 1, self.stride, "constant component count");
        self.fill_scratch_from(parent)?;

        if *self.mems.get(self.scratch[0]) != *state.memory() {
            let (mem_id, mem_new) = self.mems.intern_ref(state.memory());
            if mem_new {
                self.component_bytes += S::mem_bytes(state.memory());
            }
            self.scratch[0] = mem_id;
        }
        for (index, proc) in state.procs().iter().enumerate() {
            if *self.procs.get(self.scratch[1 + index]) != *proc {
                let (proc_id, proc_new) = self.procs.intern_ref(proc);
                if proc_new {
                    self.component_bytes += S::proc_bytes(proc);
                }
                self.scratch[1 + index] = proc_id;
            }
        }
        self.intern_scratch_row()
    }

    /// Label-directed [`ComponentArena::intern`]: `touched` names the
    /// components the producing transition(s) may have modified (from the
    /// [`Action`] labels), so every component outside the mask reuses the
    /// parent's id without any comparison — the successor re-interns *one*
    /// proc (plus the memory on writes) instead of touching the world.
    ///
    /// Soundness rests on the `LabeledMachine` contract that a rule mutates
    /// only the acting thread's private state and the declared shared
    /// memory; debug builds assert it component by component.
    pub(crate) fn intern_touched(
        &mut self,
        state: &S,
        parent: u32,
        touched: Touched,
    ) -> Result<(u32, bool), SpillError> {
        self.intern_touched_impl(state, parent, touched, true)
    }

    /// [`ComponentArena::intern_touched`] for *sparse* successor states
    /// (see `LabeledMachine::labeled_successors_sparse_into`): components
    /// outside the mask hold stale buffer content rather than copies of
    /// the parent's, so the debug verification of the untouched components
    /// is skipped — they are never read at all.
    pub(crate) fn intern_touched_sparse(
        &mut self,
        state: &S,
        parent: u32,
        touched: Touched,
    ) -> Result<(u32, bool), SpillError> {
        self.intern_touched_impl(state, parent, touched, false)
    }

    fn intern_touched_impl(
        &mut self,
        state: &S,
        parent: u32,
        touched: Touched,
        assert_untouched: bool,
    ) -> Result<(u32, bool), SpillError> {
        debug_assert_eq!(state.procs().len() + 1, self.stride, "constant component count");
        self.fill_scratch_from(parent)?;

        if touched.mem {
            if *self.mems.get(self.scratch[0]) != *state.memory() {
                let (mem_id, mem_new) = self.mems.intern_ref(state.memory());
                if mem_new {
                    self.component_bytes += S::mem_bytes(state.memory());
                }
                self.scratch[0] = mem_id;
            }
        } else {
            debug_assert!(
                !assert_untouched || *self.mems.get(self.scratch[0]) == *state.memory(),
                "a non-writing action must leave the shared memory intact"
            );
        }
        for (index, proc) in state.procs().iter().enumerate() {
            if touched.touches_proc(index) {
                if *self.procs.get(self.scratch[1 + index]) != *proc {
                    let (proc_id, proc_new) = self.procs.intern_ref(proc);
                    if proc_new {
                        self.component_bytes += S::proc_bytes(proc);
                    }
                    self.scratch[1 + index] = proc_id;
                }
            } else {
                debug_assert!(
                    !assert_untouched || *self.procs.get(self.scratch[1 + index]) == *proc,
                    "an action must leave other threads' private state intact"
                );
            }
        }
        self.intern_scratch_row()
    }

    /// Deduplicates the row in `scratch` against the state table. Cold
    /// candidate slots (same hash, row on disk) are compared by reloading
    /// their segment — the one place dedup may touch the disk.
    fn intern_scratch_row(&mut self) -> Result<(u32, bool), SpillError> {
        let hash = self.hasher.hash_one(&self.scratch);
        let slot = u32::try_from(self.len()).expect("state count fits u32");
        let mut cold: Vec<u32> = Vec::new();
        if let Some(bucket) = self.by_hash.get(&hash) {
            let base = self.spilled_rows;
            for &candidate in bucket.slots() {
                if (candidate as usize) >= base {
                    let start = (candidate as usize - base) * self.stride;
                    if self.ids[start..start + self.stride] == self.scratch[..] {
                        return Ok((candidate, false));
                    }
                } else {
                    cold.push(candidate);
                }
            }
        }
        for candidate in cold {
            let ComponentArena { cold_buf, spill, .. } = self;
            let store = spill.as_mut().expect("a cold slot implies an armed spill store");
            store.read_row(candidate as usize, cold_buf)?;
            if self.cold_buf == self.scratch {
                return Ok((candidate, false));
            }
        }
        match self.by_hash.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                entry.get_mut().push(slot);
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(Bucket::One(slot));
            }
        }
        self.ids.extend_from_slice(&self.scratch);
        Ok((slot, true))
    }

    /// Reassembles the state at `slot` into `into`, reusing its buffers
    /// through `clone_from`. Cold slots reload their row from disk.
    pub(crate) fn load(&mut self, slot: u32, into: &mut S) -> Result<(), SpillError> {
        if (slot as usize) < self.spilled_rows {
            {
                let ComponentArena { cold_buf, spill, .. } = self;
                let store = spill.as_mut().expect("a cold slot implies an armed spill store");
                store.read_row(slot as usize, cold_buf)?;
            }
            into.memory_mut().clone_from(self.mems.get(self.cold_buf[0]));
            for (index, proc) in into.procs_mut().iter_mut().enumerate() {
                proc.clone_from(self.procs.get(self.cold_buf[1 + index]));
            }
        } else {
            let row = self.row(slot);
            into.memory_mut().clone_from(self.mems.get(row[0]));
            for (index, proc) in into.procs_mut().iter_mut().enumerate() {
                proc.clone_from(self.procs.get(row[1 + index]));
            }
        }
        Ok(())
    }

    /// The arena's sharing statistics.
    pub(crate) fn occupancy(&self) -> ArenaOccupancy {
        ArenaOccupancy {
            states: self.len(),
            distinct_memories: self.mems.len(),
            distinct_procs: self.procs.len(),
            interned_bytes: self.component_bytes
                + self.len() * self.stride * std::mem::size_of::<u32>(),
        }
    }

    /// Reassembles every interned state in slot order, cloning `template`
    /// for the buffers (used when a sequential exploration escalates to the
    /// sharded-parallel driver — escalation is disabled once memory
    /// budgeting is armed, so no row can be cold here).
    pub(crate) fn export_states(&mut self, template: &S) -> Vec<S> {
        assert_eq!(self.spilled_rows, 0, "cannot export a partially spilled arena");
        (0..self.len())
            .map(|slot| {
                let mut state = template.clone();
                self.load(slot as u32, &mut state).expect("no cold rows without spill");
                state
            })
            .collect()
    }

    /// Serializes the arena for an intra-exploration checkpoint: every
    /// distinct component in id order, the spill-segment manifest, and the
    /// resident rows. The hash index is *not* stored — it is rebuilt
    /// deterministically on decode.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.stride);
        codec::put_usize(out, self.mems.len());
        for id in 0..self.mems.len() {
            S::encode_mem(self.mems.get(id as u32), out);
        }
        codec::put_usize(out, self.procs.len());
        for id in 0..self.procs.len() {
            S::encode_proc(self.procs.get(id as u32), out);
        }
        let manifest = self.spill_manifest();
        codec::put_usize(out, manifest.len());
        for (name, rows) in &manifest {
            codec::put_bytes(out, name.as_bytes());
            codec::put_usize(out, *rows);
        }
        codec::put_usize(out, self.spilled_rows);
        codec::put_usize(out, self.ids.len());
        for &word in &self.ids {
            codec::put_u32(out, word);
        }
    }

    /// Rebuilds an arena from [`ComponentArena::encode`] bytes. Needs the
    /// spill directory when the snapshot references spilled segments (their
    /// rows are re-read to rebuild the hash index). Errors carry a message
    /// suitable for the trace stream.
    pub(crate) fn decode(
        input: &mut &[u8],
        num_procs: usize,
        spill_dir: Option<&Path>,
    ) -> Result<Self, String> {
        let truncated = || "truncated arena snapshot".to_string();
        let stride = codec::take_usize(input).ok_or_else(truncated)?;
        if stride != 1 + num_procs {
            return Err(format!("arena snapshot stride {stride} != {}", 1 + num_procs));
        }
        let mut arena = ComponentArena::new(num_procs);

        let mem_count = codec::take_usize(input).ok_or_else(truncated)?;
        for _ in 0..mem_count {
            let mem = S::decode_mem(input).ok_or_else(truncated)?;
            arena.component_bytes += S::mem_bytes(&mem);
            arena.mems.intern(mem);
        }
        let proc_count = codec::take_usize(input).ok_or_else(truncated)?;
        for _ in 0..proc_count {
            let proc = S::decode_proc(input).ok_or_else(truncated)?;
            arena.component_bytes += S::proc_bytes(&proc);
            arena.procs.intern(proc);
        }

        let manifest_len = codec::take_usize(input).ok_or_else(truncated)?;
        let mut manifest = Vec::with_capacity(manifest_len);
        for _ in 0..manifest_len {
            let name = codec::take_bytes(input).ok_or_else(truncated)?;
            let name = String::from_utf8(name.to_vec())
                .map_err(|_| "non-utf8 segment name in arena snapshot".to_string())?;
            let rows = codec::take_usize(input).ok_or_else(truncated)?;
            manifest.push((name, rows));
        }
        let spilled_rows = codec::take_usize(input).ok_or_else(truncated)?;
        if spilled_rows != manifest.iter().map(|(_, rows)| rows).sum::<usize>() {
            return Err("arena snapshot manifest does not cover its spilled rows".to_string());
        }
        if spilled_rows > 0 {
            let dir = spill_dir
                .ok_or_else(|| "snapshot has spilled segments but no --spill-dir".to_string())?;
            let store =
                SpillStore::from_manifest(dir, stride, manifest).map_err(|err| err.message)?;
            arena.spilled_rows = spilled_rows;
            arena.spill = Some(store);
        }

        let word_count = codec::take_usize(input).ok_or_else(truncated)?;
        if word_count % stride != 0 {
            return Err("arena snapshot id table is not whole rows".to_string());
        }
        arena.ids.reserve(word_count);
        for _ in 0..word_count {
            arena.ids.push(codec::take_u32(input).ok_or_else(truncated)?);
        }

        // Rebuild the hash index in slot order: resident rows directly,
        // cold rows through their segments (sequential, so the one-segment
        // cache makes this a linear read per segment).
        let mut row_buf: Vec<u32> = Vec::with_capacity(stride);
        for slot in 0..arena.len() {
            if slot < arena.spilled_rows {
                let store = arena.spill.as_mut().expect("cold rows imply a store");
                store.read_row(slot, &mut row_buf).map_err(|err| err.message)?;
            } else {
                row_buf.clear();
                let start = (slot - arena.spilled_rows) * stride;
                row_buf.extend_from_slice(&arena.ids[start..start + stride]);
            }
            let component_ok = row_buf[..1].iter().all(|&id| (id as usize) < arena.mems.len())
                && row_buf[1..].iter().all(|&id| (id as usize) < arena.procs.len());
            if !component_ok {
                return Err(format!("arena snapshot row {slot} references unknown components"));
            }
            let hash = arena.hasher.hash_one(&row_buf);
            let slot = u32::try_from(slot).expect("state count fits u32");
            match arena.by_hash.entry(hash) {
                std::collections::hash_map::Entry::Occupied(mut entry) => {
                    entry.get_mut().push(slot);
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(Bucket::One(slot));
                }
            }
        }
        Ok(arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gam::{GamMachine, GamState};
    use crate::machine::{AbstractMachine, LabeledMachine};
    use gam_isa::litmus::library;

    #[test]
    fn successors_share_unchanged_components_with_their_parent() {
        let machine = GamMachine::new(&library::dekker());
        let initial = machine.initial_state();
        let mut arena: ComponentArena<GamState> = ComponentArena::new(initial.procs().len());
        let root = arena.intern_root(&initial);
        assert_eq!(root, 0);
        assert_eq!(arena.len(), 1);

        let successors = machine.labeled_successors(&initial);
        assert!(!successors.is_empty());
        for (_, successor) in &successors {
            let (slot, is_new) = arena.intern(successor, root).unwrap();
            assert!(is_new, "distinct successors intern to fresh slots");
            // Dekker's first steps touch exactly one proc (store-data /
            // address already resolved at fetch; the commit also writes
            // memory) — the untouched proc's component is shared.
            let parent_row: Vec<u32> = arena.row(root).to_vec();
            let child_row: Vec<u32> = arena.row(slot).to_vec();
            let shared = parent_row.iter().zip(&child_row).filter(|(a, b)| a == b).count();
            assert!(shared >= 1, "at least one component is shared with the parent");
        }
        // Re-interning an existing successor is a pure lookup.
        let (slot0, fresh) = arena.intern(&successors[0].1, root).unwrap();
        assert!(!fresh);
        assert_eq!(slot0, 1);

        let occupancy = arena.occupancy();
        assert_eq!(occupancy.states, 1 + successors.len());
        assert!(occupancy.distinct_memories >= 1);
        assert!(occupancy.distinct_procs >= 2, "two procs in the initial state alone");
        assert!(occupancy.distinct_components() < occupancy.states * 3);
        assert!(occupancy.interned_bytes > 0);
    }

    #[test]
    fn load_round_trips_interned_states() {
        let machine = GamMachine::new(&library::mp());
        let initial = machine.initial_state();
        let mut arena: ComponentArena<GamState> = ComponentArena::new(initial.procs().len());
        let root = arena.intern_root(&initial);

        let mut expected = vec![initial.clone()];
        for (_, successor) in machine.labeled_successors(&initial) {
            arena.intern(&successor, root).unwrap();
            expected.push(successor);
        }
        let mut scratch = initial.clone();
        for (slot, state) in expected.iter().enumerate() {
            arena.load(slot as u32, &mut scratch).unwrap();
            assert_eq!(scratch, *state, "slot {slot} reassembles exactly");
        }
        assert_eq!(arena.export_states(&initial), expected);
    }

    #[test]
    fn spilled_rows_still_deduplicate_and_load() {
        let machine = GamMachine::new(&library::dekker());
        let initial = machine.initial_state();
        let mut arena: ComponentArena<GamState> = ComponentArena::new(initial.procs().len());
        let root = arena.intern_root(&initial);
        let successors = machine.labeled_successors(&initial);
        for (_, successor) in &successors {
            arena.intern(successor, root).unwrap();
        }
        let before = arena.len();
        let expected = arena.export_states(&initial);

        let dir = std::env::temp_dir().join(format!("gam-arena-spill-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        arena.arm_spill(SpillStore::new(&dir, 1 + initial.procs().len()).unwrap());
        let spilled = arena.spill_oldest(2).unwrap();
        assert!(spilled > 0);
        assert_eq!(arena.len(), before, "spilling moves rows, never loses states");
        assert_eq!(arena.resident_rows(), before - 2);
        let (disk_bytes, segments) = arena.spill_stats();
        assert_eq!(disk_bytes, spilled);
        assert_eq!(segments, 1);

        // Cold slots still load and still deduplicate.
        let mut scratch = initial.clone();
        for (slot, state) in expected.iter().enumerate() {
            arena.load(slot as u32, &mut scratch).unwrap();
            assert_eq!(scratch, *state, "slot {slot} reassembles after spill");
        }
        let (slot, is_new) = arena.intern(&initial, (before - 1) as u32).unwrap();
        assert!(!is_new, "the spilled root still deduplicates");
        assert_eq!(slot, root);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_round_trips_including_spilled_segments() {
        let machine = GamMachine::new(&library::mp());
        let initial = machine.initial_state();
        let mut arena: ComponentArena<GamState> = ComponentArena::new(initial.procs().len());
        let root = arena.intern_root(&initial);
        for (_, successor) in machine.labeled_successors(&initial) {
            arena.intern(&successor, root).unwrap();
        }
        let dir =
            std::env::temp_dir().join(format!("gam-arena-snapshot-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        arena.arm_spill(SpillStore::new(&dir, 1 + initial.procs().len()).unwrap());
        arena.spill_oldest(1).unwrap();

        let mut bytes = Vec::new();
        arena.encode(&mut bytes);
        let mut input = bytes.as_slice();
        let mut rebuilt: ComponentArena<GamState> =
            ComponentArena::decode(&mut input, initial.procs().len(), Some(&dir)).unwrap();
        assert!(input.is_empty(), "snapshot is fully consumed");
        assert_eq!(rebuilt.len(), arena.len());
        assert_eq!(rebuilt.occupancy(), arena.occupancy());
        // Dedup behaves identically after the round trip.
        let (slot, is_new) = rebuilt.intern(&initial, 1).unwrap();
        assert!(!is_new);
        assert_eq!(slot, root);
        std::fs::remove_dir_all(&dir).ok();
    }
}
