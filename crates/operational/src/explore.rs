//! Exhaustive exploration of an abstract machine's state space.
//!
//! The explorer performs a memoised search over the transition graph of an
//! [`AbstractMachine`], collecting the outcome of every reachable final
//! state. Litmus-test state spaces are finite (bounded ROBs, bounded
//! programs), so the search is exact; configurable limits guard against
//! pathological inputs.
//!
//! Two performance mechanisms sit under the search. States are *interned*:
//! an arena stores each distinct state exactly once and an `FxHash`-keyed
//! index maps state hashes to arena slots, so the frontier and the visited
//! set carry 4-byte indices instead of duplicated machine configurations, and
//! every state is hashed once with a fast, deterministic hash
//! ([`rustc_hash::FxHasher`]) instead of twice with SipHash. When
//! [`ExplorerConfig::parallelism`] is above one, the frontier is sharded by
//! state hash across that many worker threads: each shard owns the states
//! whose hash lands in it (so deduplication stays lock-local), idle workers
//! pull expansion batches from a shared injector queue, and the per-worker
//! outcome sets are merged at the end — the merged set is identical to the
//! sequential one because exploration order never affects which states are
//! reachable.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use gam_isa::litmus::Outcome;
use rustc_hash::{FxBuildHasher, FxHashMap};

use crate::machine::AbstractMachine;

/// Limits and resources of the exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorerConfig {
    /// Maximum number of distinct states to visit before giving up.
    pub max_states: usize,
    /// Number of worker threads exploring the state space (clamped to at
    /// least 1; 1 means sequential exploration). Composes multiplicatively
    /// with any suite-level parallelism (e.g. `Engine::run_suite` workers) —
    /// keep the product near the core count.
    pub parallelism: usize,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig { max_states: 5_000_000, parallelism: 1 }
    }
}

impl ExplorerConfig {
    /// The default limits with the machine's available hardware parallelism.
    #[must_use]
    pub fn parallel() -> Self {
        let n = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ExplorerConfig { parallelism: n, ..ExplorerConfig::default() }
    }
}

/// Errors reported by the explorer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExploreError {
    /// The state space exceeded [`ExplorerConfig::max_states`].
    StateLimitExceeded {
        /// The configured limit.
        limit: usize,
        /// Number of distinct states actually visited when the exploration
        /// aborted (can exceed `limit` slightly under parallel exploration).
        states_visited: usize,
        /// The outcomes of the final states reached before the abort — a
        /// sound *under*-approximation of the true outcome set, kept for
        /// diagnostics.
        partial_outcomes: BTreeSet<Outcome>,
    },
    /// A non-final state had no enabled rule (the machine deadlocked), which
    /// indicates a modelling bug.
    Deadlock,
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::StateLimitExceeded { limit, states_visited, partial_outcomes } => {
                write!(
                    f,
                    "state space exceeded the limit of {limit} states \
                     ({states_visited} visited, {} partial outcomes collected)",
                    partial_outcomes.len()
                )
            }
            ExploreError::Deadlock => write!(f, "a non-final state has no enabled rule"),
        }
    }
}

impl std::error::Error for ExploreError {}

/// The result of an exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    /// The set of outcomes of all reachable final states.
    pub outcomes: BTreeSet<Outcome>,
    /// Number of distinct states visited.
    pub states_visited: usize,
    /// Number of reachable final states (counted once per distinct state).
    pub final_states: usize,
}

/// An exhaustive state-space explorer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Explorer {
    config: ExplorerConfig,
}

impl Explorer {
    /// Creates an explorer with the given limits.
    #[must_use]
    pub fn new(config: ExplorerConfig) -> Self {
        Explorer { config }
    }

    /// The explorer's configuration.
    #[must_use]
    pub fn config(&self) -> ExplorerConfig {
        self.config
    }

    /// Exhaustively explores the machine and collects every reachable final
    /// outcome, in parallel when [`ExplorerConfig::parallelism`] is above 1.
    ///
    /// The `Sync`/`Send` bounds exist for the parallel mode; a machine with a
    /// thread-bound state can still use
    /// [`Explorer::explore_sequential`] directly.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::StateLimitExceeded`] if the state space is
    /// larger than the configured limit, and [`ExploreError::Deadlock`] if a
    /// non-final state has no successor.
    pub fn explore<M: AbstractMachine + Sync>(
        &self,
        machine: &M,
    ) -> Result<Exploration, ExploreError>
    where
        M::State: Send,
    {
        if self.config.parallelism > 1 {
            self.explore_parallel(machine)
        } else {
            self.explore_sequential(machine)
        }
    }

    /// Single-threaded exploration, available without the thread-safety
    /// bounds of [`Explorer::explore`] (ignores
    /// [`ExplorerConfig::parallelism`]).
    ///
    /// # Errors
    ///
    /// See [`Explorer::explore`].
    pub fn explore_sequential<M: AbstractMachine>(
        &self,
        machine: &M,
    ) -> Result<Exploration, ExploreError> {
        let mut visited: InternedStates<M::State> = InternedStates::default();
        let mut stack: Vec<u32> = Vec::new();
        let mut outcomes = BTreeSet::new();
        let mut final_states = 0usize;

        let initial = machine.initial_state();
        stack.push(visited.insert(initial).expect("initial state is new"));

        while let Some(index) = stack.pop() {
            // The borrow of the interned state ends with each call, so the
            // arena can keep growing while the successors are inserted.
            let successors = machine.successors(visited.get(index));
            if machine.is_final(visited.get(index)) {
                // A state can be final while still having enabled rules (e.g.
                // a fetch past the interesting instructions); record it
                // either way.
                final_states += 1;
                outcomes.insert(machine.outcome(visited.get(index)));
            } else if successors.is_empty() {
                return Err(ExploreError::Deadlock);
            }
            for next in successors {
                if let Some(new_index) = visited.insert(next) {
                    if visited.len() > self.config.max_states {
                        return Err(ExploreError::StateLimitExceeded {
                            limit: self.config.max_states,
                            states_visited: visited.len(),
                            partial_outcomes: outcomes,
                        });
                    }
                    stack.push(new_index);
                }
            }
        }

        Ok(Exploration { outcomes, states_visited: visited.len(), final_states })
    }

    /// Sharded-frontier parallel exploration. Idle workers spin-yield rather
    /// than parking: litmus-scale explorations finish in micro- to
    /// milliseconds, so the spin window is short and a condvar handshake per
    /// frontier item would cost more than it saves. Oversubscription is the
    /// caller's concern — `parallelism` here multiplies with any suite-level
    /// fan-out (see [`ExplorerConfig::parallelism`]).
    fn explore_parallel<M: AbstractMachine + Sync>(
        &self,
        machine: &M,
    ) -> Result<Exploration, ExploreError>
    where
        M::State: Send,
    {
        let workers = self.config.parallelism;
        let shards: Vec<Mutex<InternedStates<M::State>>> =
            (0..workers).map(|_| Mutex::new(InternedStates::default())).collect();
        let shard_of = |hash: u64| (hash % workers as u64) as usize;

        let visited_count = AtomicUsize::new(0);
        let final_count = AtomicUsize::new(0);
        // Frontier items not yet fully expanded; exploration is complete when
        // this drains to zero (a worker only decrements *after* pushing every
        // successor, so the count can never transiently hit zero while work
        // remains).
        let in_flight = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let injector: Mutex<Vec<(u32, u32)>> = Mutex::new(Vec::new());
        let deadlocked = AtomicBool::new(false);
        let merged: Mutex<BTreeSet<Outcome>> = Mutex::new(BTreeSet::new());

        {
            let initial = machine.initial_state();
            let hash = FxBuildHasher::default().hash_one(&initial);
            let shard = shard_of(hash);
            let index = shards[shard]
                .lock()
                .expect("shard lock")
                .insert_hashed(hash, initial)
                .expect("initial state is new");
            visited_count.store(1, Ordering::Relaxed);
            in_flight.store(1, Ordering::SeqCst);
            injector.lock().expect("injector lock").push((shard as u32, index));
        }

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let hasher = FxBuildHasher::default();
                    let mut local: Vec<(u32, u32)> = Vec::new();
                    let mut outcomes = BTreeSet::new();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let Some((shard, index)) = local.pop().or_else(|| {
                            let mut queue = injector.lock().expect("injector lock");
                            let take = (queue.len() / 2).clamp(1, 64);
                            let from = queue.len().saturating_sub(take);
                            let drained: Vec<_> = queue.drain(from..).collect();
                            drop(queue);
                            local.extend(drained);
                            local.pop()
                        }) else {
                            if in_flight.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                            continue;
                        };

                        let state =
                            shards[shard as usize].lock().expect("shard lock").get(index).clone();
                        let successors = machine.successors(&state);
                        if machine.is_final(&state) {
                            final_count.fetch_add(1, Ordering::Relaxed);
                            outcomes.insert(machine.outcome(&state));
                        } else if successors.is_empty() {
                            deadlocked.store(true, Ordering::Relaxed);
                            abort.store(true, Ordering::Relaxed);
                        }
                        for next in successors {
                            let hash = hasher.hash_one(&next);
                            let target = shard_of(hash);
                            let inserted = shards[target]
                                .lock()
                                .expect("shard lock")
                                .insert_hashed(hash, next);
                            if let Some(new_index) = inserted {
                                if visited_count.fetch_add(1, Ordering::Relaxed) + 1
                                    > self.config.max_states
                                {
                                    abort.store(true, Ordering::Relaxed);
                                    break;
                                }
                                in_flight.fetch_add(1, Ordering::SeqCst);
                                local.push((target as u32, new_index));
                            }
                        }
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        // Keep other workers fed: spill half of a large local
                        // stack into the shared injector.
                        if local.len() > 64 {
                            let spill: Vec<_> = local.drain(..local.len() / 2).collect();
                            injector.lock().expect("injector lock").extend(spill);
                        }
                    }
                    merged.lock().expect("outcome lock").append(&mut outcomes);
                });
            }
        });

        let outcomes = merged.into_inner().expect("outcome lock");
        let states_visited = visited_count.load(Ordering::Relaxed);
        if deadlocked.load(Ordering::Relaxed) {
            return Err(ExploreError::Deadlock);
        }
        if abort.load(Ordering::Relaxed) {
            return Err(ExploreError::StateLimitExceeded {
                limit: self.config.max_states,
                states_visited,
                partial_outcomes: outcomes,
            });
        }
        Ok(Exploration {
            outcomes,
            states_visited,
            final_states: final_count.load(Ordering::Relaxed),
        })
    }
}

/// An interning state set: an arena holding each distinct state once, indexed
/// by a hash → arena-slot map, so frontiers can carry `u32` slots instead of
/// cloned states and membership tests hash each candidate exactly once.
#[derive(Debug)]
struct InternedStates<S> {
    arena: Vec<S>,
    by_hash: FxHashMap<u64, Vec<u32>>,
    hasher: FxBuildHasher,
}

impl<S> Default for InternedStates<S> {
    fn default() -> Self {
        InternedStates {
            arena: Vec::new(),
            by_hash: FxHashMap::default(),
            hasher: FxBuildHasher::default(),
        }
    }
}

impl<S: std::hash::Hash + Eq> InternedStates<S> {
    /// Inserts a state, returning its fresh arena slot, or `None` if an equal
    /// state was already interned.
    fn insert(&mut self, state: S) -> Option<u32> {
        let hash = self.hasher.hash_one(&state);
        self.insert_hashed(hash, state)
    }

    /// Like `insert` with the hash precomputed (parallel shards hash before
    /// picking a shard).
    fn insert_hashed(&mut self, hash: u64, state: S) -> Option<u32> {
        let bucket = self.by_hash.entry(hash).or_default();
        if bucket.iter().any(|&slot| self.arena[slot as usize] == state) {
            return None;
        }
        let slot = u32::try_from(self.arena.len()).expect("state count fits u32");
        self.arena.push(state);
        bucket.push(slot);
        Some(slot)
    }

    fn get(&self, slot: u32) -> &S {
        &self.arena[slot as usize]
    }

    fn len(&self) -> usize {
        self.arena.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::AbstractMachine;
    use gam_isa::litmus::Outcome;

    /// A diamond-shaped machine with two final states.
    #[derive(Debug)]
    struct Diamond;

    impl AbstractMachine for Diamond {
        type State = u8;

        fn initial_state(&self) -> u8 {
            0
        }

        fn successors(&self, state: &u8) -> Vec<u8> {
            match state {
                0 => vec![1, 2],
                1 | 2 => vec![3],
                _ => vec![],
            }
        }

        fn is_final(&self, state: &u8) -> bool {
            *state == 3
        }

        fn outcome(&self, _state: &u8) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "diamond"
        }
    }

    /// A machine that deadlocks in a non-final state.
    #[derive(Debug)]
    struct Stuck;

    impl AbstractMachine for Stuck {
        type State = u8;

        fn initial_state(&self) -> u8 {
            0
        }

        fn successors(&self, _state: &u8) -> Vec<u8> {
            vec![]
        }

        fn is_final(&self, _state: &u8) -> bool {
            false
        }

        fn outcome(&self, _state: &u8) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "stuck"
        }
    }

    /// A wide two-level tree: `fanout` interior states each fanning into
    /// `fanout` final leaves (value-distinct outcomes are not needed; the
    /// explorer counts distinct *states*).
    #[derive(Debug)]
    struct Wide {
        fanout: u32,
    }

    impl AbstractMachine for Wide {
        type State = u32;

        fn initial_state(&self) -> u32 {
            0
        }

        fn successors(&self, state: &u32) -> Vec<u32> {
            if *state == 0 {
                (1..=self.fanout).collect()
            } else if *state <= self.fanout {
                (1..=self.fanout).map(|leaf| self.fanout * *state + leaf).collect()
            } else {
                vec![]
            }
        }

        fn is_final(&self, state: &u32) -> bool {
            *state > self.fanout
        }

        fn outcome(&self, _state: &u32) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "wide"
        }
    }

    #[test]
    fn diamond_visits_all_states_once() {
        let exploration = Explorer::default().explore(&Diamond).unwrap();
        assert_eq!(exploration.states_visited, 4);
        assert_eq!(exploration.final_states, 1);
        assert_eq!(exploration.outcomes.len(), 1);
    }

    #[test]
    fn deadlock_is_reported() {
        assert_eq!(Explorer::default().explore(&Stuck), Err(ExploreError::Deadlock));
    }

    #[test]
    fn parallel_deadlock_is_reported() {
        let explorer = Explorer::new(ExplorerConfig { parallelism: 4, ..Default::default() });
        assert_eq!(explorer.explore(&Stuck), Err(ExploreError::Deadlock));
    }

    #[test]
    fn state_limit_reports_accurate_statistics() {
        let explorer = Explorer::new(ExplorerConfig { max_states: 2, parallelism: 1 });
        match explorer.explore(&Diamond) {
            Err(ExploreError::StateLimitExceeded { limit, states_visited, partial_outcomes }) => {
                assert_eq!(limit, 2);
                // The third insertion trips the limit, so exactly 3 states
                // were interned when the abort happened — not the configured
                // limit, the true count.
                assert_eq!(states_visited, 3);
                // No final state was reached before the abort.
                assert!(partial_outcomes.is_empty());
            }
            other => panic!("expected a state-limit error, got {other:?}"),
        }
        assert_eq!(explorer.config().max_states, 2);
    }

    #[test]
    fn state_limit_keeps_partial_outcomes() {
        // The DFS finishes the first interior node's leaves (all final)
        // before expanding the next interior node trips the limit.
        let explorer = Explorer::new(ExplorerConfig { max_states: 12, parallelism: 1 });
        match explorer.explore(&Wide { fanout: 5 }) {
            Err(ExploreError::StateLimitExceeded { states_visited, partial_outcomes, .. }) => {
                assert!(states_visited > 12);
                assert_eq!(partial_outcomes.len(), 1, "the empty outcome was collected");
            }
            other => panic!("expected a state-limit error, got {other:?}"),
        }
    }

    #[test]
    fn parallel_matches_sequential_on_a_wide_tree() {
        let machine = Wide { fanout: 40 };
        let sequential = Explorer::default().explore(&machine).unwrap();
        for workers in [2, 4, 8] {
            let parallel =
                Explorer::new(ExplorerConfig { parallelism: workers, ..Default::default() })
                    .explore(&machine)
                    .unwrap();
            assert_eq!(parallel, sequential, "{workers} workers");
        }
        assert_eq!(sequential.states_visited, 1 + 40 + 40 * 40);
        assert_eq!(sequential.final_states, 40 * 40);
    }

    #[test]
    fn parallel_state_limit_aborts() {
        let explorer = Explorer::new(ExplorerConfig { max_states: 10, parallelism: 4 });
        match explorer.explore(&Wide { fanout: 40 }) {
            Err(ExploreError::StateLimitExceeded { limit, states_visited, .. }) => {
                assert_eq!(limit, 10);
                assert!(states_visited > 10);
            }
            other => panic!("expected a state-limit error, got {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        assert!(ExploreError::Deadlock.to_string().contains("no enabled rule"));
        let err = ExploreError::StateLimitExceeded {
            limit: 7,
            states_visited: 9,
            partial_outcomes: BTreeSet::new(),
        };
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains('9'));
    }

    #[test]
    fn interned_states_deduplicate_and_index() {
        let mut set: InternedStates<u64> = InternedStates::default();
        let a = set.insert(10).expect("new");
        assert_eq!(set.insert(10), None);
        let b = set.insert(11).expect("new");
        assert_ne!(a, b);
        assert_eq!(*set.get(a), 10);
        assert_eq!(*set.get(b), 11);
        assert_eq!(set.len(), 2);
    }
}
