//! Exhaustive exploration of an abstract machine's state space.
//!
//! The explorer performs a memoised depth-first search over the transition
//! graph of an [`AbstractMachine`], collecting the outcome of every reachable
//! final state. Litmus-test state spaces are finite (bounded ROBs, bounded
//! programs), so the search is exact; configurable limits guard against
//! pathological inputs.

use std::collections::{BTreeSet, HashSet};
use std::fmt;

use gam_isa::litmus::Outcome;

use crate::machine::AbstractMachine;

/// Limits for the exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorerConfig {
    /// Maximum number of distinct states to visit before giving up.
    pub max_states: usize,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig { max_states: 5_000_000 }
    }
}

/// Errors reported by the explorer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExploreError {
    /// The state space exceeded [`ExplorerConfig::max_states`].
    StateLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A non-final state had no enabled rule (the machine deadlocked), which
    /// indicates a modelling bug.
    Deadlock,
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::StateLimitExceeded { limit } => {
                write!(f, "state space exceeded the limit of {limit} states")
            }
            ExploreError::Deadlock => write!(f, "a non-final state has no enabled rule"),
        }
    }
}

impl std::error::Error for ExploreError {}

/// The result of an exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    /// The set of outcomes of all reachable final states.
    pub outcomes: BTreeSet<Outcome>,
    /// Number of distinct states visited.
    pub states_visited: usize,
    /// Number of reachable final states (counted once per distinct state).
    pub final_states: usize,
}

/// An exhaustive state-space explorer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Explorer {
    config: ExplorerConfig,
}

impl Explorer {
    /// Creates an explorer with the given limits.
    #[must_use]
    pub fn new(config: ExplorerConfig) -> Self {
        Explorer { config }
    }

    /// The explorer's configuration.
    #[must_use]
    pub fn config(&self) -> ExplorerConfig {
        self.config
    }

    /// Exhaustively explores the machine and collects every reachable final
    /// outcome.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::StateLimitExceeded`] if the state space is
    /// larger than the configured limit, and [`ExploreError::Deadlock`] if a
    /// non-final state has no successor.
    pub fn explore<M: AbstractMachine>(&self, machine: &M) -> Result<Exploration, ExploreError> {
        let mut visited: HashSet<M::State> = HashSet::new();
        let mut stack: Vec<M::State> = Vec::new();
        let mut outcomes = BTreeSet::new();
        let mut final_states = 0usize;

        let initial = machine.initial_state();
        visited.insert(initial.clone());
        stack.push(initial);

        while let Some(state) = stack.pop() {
            let successors = machine.successors(&state);
            if successors.is_empty() {
                if machine.is_final(&state) {
                    final_states += 1;
                    outcomes.insert(machine.outcome(&state));
                } else {
                    return Err(ExploreError::Deadlock);
                }
                continue;
            }
            // A state can be final while still having enabled rules (e.g. a
            // fetch past the interesting instructions); record it either way.
            if machine.is_final(&state) {
                final_states += 1;
                outcomes.insert(machine.outcome(&state));
            }
            for next in successors {
                if visited.contains(&next) {
                    continue;
                }
                if visited.len() >= self.config.max_states {
                    return Err(ExploreError::StateLimitExceeded { limit: self.config.max_states });
                }
                visited.insert(next.clone());
                stack.push(next);
            }
        }

        Ok(Exploration { outcomes, states_visited: visited.len(), final_states })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::AbstractMachine;
    use gam_isa::litmus::Outcome;

    /// A diamond-shaped machine with two final states.
    #[derive(Debug)]
    struct Diamond;

    impl AbstractMachine for Diamond {
        type State = u8;

        fn initial_state(&self) -> u8 {
            0
        }

        fn successors(&self, state: &u8) -> Vec<u8> {
            match state {
                0 => vec![1, 2],
                1 | 2 => vec![3],
                _ => vec![],
            }
        }

        fn is_final(&self, state: &u8) -> bool {
            *state == 3
        }

        fn outcome(&self, _state: &u8) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "diamond"
        }
    }

    /// A machine that deadlocks in a non-final state.
    #[derive(Debug)]
    struct Stuck;

    impl AbstractMachine for Stuck {
        type State = u8;

        fn initial_state(&self) -> u8 {
            0
        }

        fn successors(&self, _state: &u8) -> Vec<u8> {
            vec![]
        }

        fn is_final(&self, _state: &u8) -> bool {
            false
        }

        fn outcome(&self, _state: &u8) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "stuck"
        }
    }

    #[test]
    fn diamond_visits_all_states_once() {
        let exploration = Explorer::default().explore(&Diamond).unwrap();
        assert_eq!(exploration.states_visited, 4);
        assert_eq!(exploration.final_states, 1);
        assert_eq!(exploration.outcomes.len(), 1);
    }

    #[test]
    fn deadlock_is_reported() {
        assert_eq!(Explorer::default().explore(&Stuck), Err(ExploreError::Deadlock));
    }

    #[test]
    fn state_limit_is_enforced() {
        let explorer = Explorer::new(ExplorerConfig { max_states: 2 });
        assert_eq!(explorer.explore(&Diamond), Err(ExploreError::StateLimitExceeded { limit: 2 }));
        assert_eq!(explorer.config().max_states, 2);
    }

    #[test]
    fn error_display() {
        assert!(ExploreError::Deadlock.to_string().contains("no enabled rule"));
        assert!(ExploreError::StateLimitExceeded { limit: 7 }.to_string().contains('7'));
    }
}
