//! Exhaustive exploration of an abstract machine's state space.
//!
//! The explorer performs a memoised search over the transition graph of an
//! [`AbstractMachine`], collecting the outcome of every reachable final
//! state. Litmus-test state spaces are finite (bounded ROBs, bounded
//! programs), so the search is exact; configurable limits guard against
//! pathological inputs.
//!
//! Three performance mechanisms sit under the search. States are *interned*:
//! an arena stores each distinct state exactly once and an `FxHash`-keyed
//! index maps state hashes to arena slots, so the frontier and the visited
//! set carry 4-byte indices instead of duplicated machine configurations, and
//! every state is hashed once with a fast, deterministic hash
//! ([`rustc_hash::FxHasher`]) instead of twice with SipHash. When
//! [`ExplorerConfig::parallelism`] is above one, the frontier is sharded by
//! state hash across that many worker threads: each shard owns the states
//! whose hash lands in it (so deduplication stays lock-local), idle workers
//! pull expansion batches from a shared injector queue, and the per-worker
//! outcome sets are merged at the end.
//!
//! The third mechanism is **partial-order and symmetry reduction** over the
//! labels of a [`LabeledMachine`], selected by [`Reduction`]:
//!
//! * **Persistent sets** — when every enabled action of some thread is
//!   thread-private (`ActionKind::Local` / `ActionKind::Fence`), those
//!   actions commute with every action any other thread can ever take, so
//!   exploring only that thread from this state reaches the same final
//!   states. This prunes whole subtrees and therefore *states*.
//! * **Sleep sets** — after exploring action `a` from a state, every
//!   sibling ordering that begins with an action independent of `a` and
//!   later fires `a` revisits the same states; the successor inherits a
//!   *sleep set* of such already-covered actions and skips them. This prunes
//!   *transitions* (re-expansions), not states. Revisiting an interned state
//!   with a sleep set that is not a superset of the stored one re-expands it
//!   with the intersection, which keeps the search exact.
//! * **Canonicalization** ([`Reduction::SleepPlusCanon`]) — states are
//!   rewritten by [`LabeledMachine::canonicalize`] before interning, so
//!   states differing only in semantically dead fields (e.g. the recorded
//!   prediction of a resolved branch) collapse to one arena slot.
//!
//! Soundness of the whole stack rests on the [`LabeledMachine`] contract
//! (thread-local guards, honest memory-address labels): under it, the
//! reduced search reaches exactly the final states of the full search, which
//! the repository pins with differential tests over the entire litmus
//! library and randomly generated programs.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::BuildHasher;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use gam_core::{fault, Interrupt, MemoryAccountant, StopReason};
use gam_isa::litmus::{Observation, Outcome};
use gam_isa::{Loc, ProcId, Reg, Value};
use rustc_hash::{FxBuildHasher, FxHashMap};

use crate::arena::{ComponentArena, ComposedState, Touched};
use crate::codec;
use crate::machine::{AbstractMachine, Action, ActionKind, Footprint, LabeledMachine};
use crate::spill::{SpillError, SpillStore};

/// The partial-order/symmetry reduction mode of the exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Reduction {
    /// Visit every interleaving (the PR 2 behaviour); the baseline the
    /// reduced modes are differentially tested against.
    #[default]
    Off,
    /// Persistent-set + sleep-set partial-order reduction over transition
    /// labels.
    Sleep,
    /// [`Reduction::Sleep`] plus state canonicalization
    /// ([`LabeledMachine::canonicalize`]) before interning.
    SleepPlusCanon,
}

impl Reduction {
    /// All modes, in increasing aggressiveness.
    pub const ALL: [Reduction; 3] = [Reduction::Off, Reduction::Sleep, Reduction::SleepPlusCanon];

    /// Is any reduction active?
    #[must_use]
    pub fn is_reduced(self) -> bool {
        !matches!(self, Reduction::Off)
    }

    /// Does the mode canonicalize states before interning?
    #[must_use]
    pub fn canonicalizes(self) -> bool {
        matches!(self, Reduction::SleepPlusCanon)
    }

    /// A short lowercase name (`"off"` / `"sleep"` / `"sleep+canon"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Reduction::Off => "off",
            Reduction::Sleep => "sleep",
            Reduction::SleepPlusCanon => "sleep+canon",
        }
    }
}

impl fmt::Display for Reduction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Limits and resources of the exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorerConfig {
    /// Maximum number of distinct states to visit before giving up.
    pub max_states: usize,
    /// Number of worker threads exploring the state space (clamped to at
    /// least 1; 1 means sequential exploration). Composes multiplicatively
    /// with any suite-level parallelism (e.g. `Engine::run_suite` workers) —
    /// keep the product near the core count.
    pub parallelism: usize,
    /// The adaptive-sharding trigger: with `parallelism > 1`, exploration
    /// still *starts* sequentially and only escalates to the sharded
    /// parallel driver once this many distinct states have been interned
    /// with frontier work remaining — the running state count is the one
    /// state-count estimate that is always right. Litmus-scale spaces
    /// (hundreds of states, microseconds of work) finish sequentially and
    /// never pay thread spawn/handoff overhead; big spaces amortize the
    /// one-time migration of the visited set into the shards. `0` shards
    /// immediately (the pre-adaptive behaviour, used by the driver tests).
    pub parallel_threshold: usize,
    /// The partial-order/symmetry reduction mode.
    pub reduction: Reduction,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            max_states: 5_000_000,
            parallelism: 1,
            parallel_threshold: 8_192,
            reduction: Reduction::Off,
        }
    }
}

impl ExplorerConfig {
    /// The default limits with the machine's available hardware parallelism.
    #[must_use]
    pub fn parallel() -> Self {
        let n = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ExplorerConfig { parallelism: n, ..ExplorerConfig::default() }
    }

    /// The default limits with the strongest reduction
    /// ([`Reduction::SleepPlusCanon`]).
    #[must_use]
    pub fn reduced() -> Self {
        ExplorerConfig { reduction: Reduction::SleepPlusCanon, ..ExplorerConfig::default() }
    }
}

/// Memory budgeting, spill-to-disk and intra-exploration checkpointing for
/// the *composed sequential* drivers (the production path of
/// `OperationalChecker`).
///
/// Arming either the budget or a checkpoint plan forces the exploration to
/// stay sequential (the adaptive escalation to the sharded parallel driver
/// is disabled): the budget ladder and checkpoint snapshots rely on the
/// deterministic single-frontier search. The plain full-state drivers ignore
/// this configuration entirely.
#[derive(Debug, Clone, Default)]
pub struct MemoryConfig {
    /// Hard in-RAM budget in *accounted* bytes (see
    /// [`gam_core::MemoryAccountant`] — deterministic figures, not allocator
    /// truth). At 80% the degradation ladder starts (sleep-cache flush, then
    /// cold-row spilling); at 100% after every degradation step the
    /// exploration stops with [`StopReason::MemoryBudget`].
    pub max_bytes: Option<usize>,
    /// Directory for cold arena segments. Without it (or without
    /// `max_bytes`) nothing is ever spilled and the ladder skips straight
    /// from cache flushing to the hard stop.
    pub spill_dir: Option<PathBuf>,
    /// Intra-exploration checkpointing: periodic snapshots of the full
    /// search state, enabling mid-exploration resume after a crash.
    pub checkpoint: Option<CheckpointPlan>,
}

impl MemoryConfig {
    /// Does this configuration constrain the exploration (and therefore
    /// force the sequential driver)?
    pub(crate) fn armed(&self) -> bool {
        self.max_bytes.is_some() || self.checkpoint.is_some()
    }
}

/// Receiver of encoded intra-exploration snapshots (e.g. a run-checkpoint
/// journal). Must be fast relative to the snapshot cadence.
pub type SnapshotSink = Arc<dyn Fn(&[u8]) + Send + Sync>;

/// Periodic intra-exploration checkpointing: every `every_expansions`
/// expansions the sequential composed driver encodes its complete search
/// state (arena, frontier, outcomes, reduction bookkeeping) and hands the
/// bytes to `sink`. A run killed between snapshots resumes from `resume`
/// with counters identical to an uninterrupted run — the search is
/// deterministic and the snapshot captures all of it.
#[derive(Clone)]
pub struct CheckpointPlan {
    /// Snapshot cadence in expansions (0 disables snapshots; `resume` still
    /// applies).
    pub every_expansions: usize,
    /// Receives each encoded snapshot (e.g. records it into a run
    /// checkpoint journal). Must be fast relative to the cadence.
    pub sink: SnapshotSink,
    /// A snapshot produced by a previous incarnation to resume from. An
    /// undecodable snapshot is reported on the trace stream and the
    /// exploration restarts from scratch (still sound, just slower).
    pub resume: Option<Arc<Vec<u8>>>,
}

impl fmt::Debug for CheckpointPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointPlan")
            .field("every_expansions", &self.every_expansions)
            .field("resume", &self.resume.as_ref().map(|bytes| bytes.len()))
            .finish_non_exhaustive()
    }
}

/// Memory-pressure statistics of a budgeted exploration (accounted bytes —
/// deterministic for a fixed search; resumed runs may legitimately differ in
/// `peak_bytes`, so default reports exclude these figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// High-water mark of the accounted in-RAM total.
    pub peak_bytes: usize,
    /// Bytes moved to disk by the spill ladder.
    pub spilled_bytes: usize,
    /// Spill segment files written.
    pub spill_segments: usize,
    /// Times the sleep-set caches were flushed under pressure.
    pub sleep_flushes: usize,
}

/// Errors reported by the explorer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExploreError {
    /// The state space exceeded [`ExplorerConfig::max_states`].
    StateLimitExceeded {
        /// The configured limit.
        limit: usize,
        /// Number of distinct states actually visited when the exploration
        /// aborted (can exceed `limit` slightly under parallel exploration).
        states_visited: usize,
        /// The outcomes of the final states reached before the abort — a
        /// sound *under*-approximation of the true outcome set, kept for
        /// diagnostics.
        partial_outcomes: BTreeSet<Outcome>,
    },
    /// A non-final state had no enabled rule (the machine deadlocked), which
    /// indicates a modelling bug.
    Deadlock,
    /// The exploration stopped early because its [`Interrupt`] triggered —
    /// the shared cancel token was cancelled or the wall-clock budget ran
    /// out. Like [`ExploreError::StateLimitExceeded`], the partial outcome
    /// set is a sound under-approximation of the true one.
    Interrupted {
        /// Why the exploration stopped.
        reason: StopReason,
        /// Number of distinct states visited when the poll tripped.
        states_visited: usize,
        /// The outcomes of the final states reached before the stop.
        partial_outcomes: BTreeSet<Outcome>,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::StateLimitExceeded { limit, states_visited, partial_outcomes } => {
                write!(
                    f,
                    "state space exceeded the limit of {limit} states \
                     ({states_visited} visited, {} partial outcomes collected)",
                    partial_outcomes.len()
                )
            }
            ExploreError::Deadlock => write!(f, "a non-final state has no enabled rule"),
            ExploreError::Interrupted { reason, states_visited, partial_outcomes } => {
                write!(
                    f,
                    "exploration interrupted: {reason} \
                     ({states_visited} states visited, {} partial outcomes collected)",
                    partial_outcomes.len()
                )
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// The result of an exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    /// The set of outcomes of all reachable final states.
    pub outcomes: BTreeSet<Outcome>,
    /// Number of distinct states visited (canonical states under
    /// [`Reduction::SleepPlusCanon`]).
    pub states_visited: usize,
    /// Number of reachable final states (counted once per distinct state).
    pub final_states: usize,
    /// Number of enabled transitions the reduction skipped (persistent-set
    /// and sleep-set prunes). Zero under [`Reduction::Off`].
    pub transitions_pruned: usize,
    /// Structure-sharing statistics of the component arena. `None` when the
    /// run used plain full-state interning (the generic [`Explorer::explore`]
    /// path, the reference oracle, and explorations that escalated to the
    /// sharded parallel driver).
    pub arena: Option<crate::arena::ArenaOccupancy>,
    /// Memory-pressure statistics. `Some` only when a
    /// [`MemoryConfig::max_bytes`] budget was armed.
    pub memory: Option<MemoryStats>,
}

/// An exhaustive state-space explorer.
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    config: ExplorerConfig,
    /// Cooperative interruption source, polled in every expansion loop at
    /// [`INTERRUPT_POLL_MASK`] cadence. Defaults to never triggering.
    interrupt: Interrupt,
    /// Memory budgeting / spilling / checkpointing (composed drivers only).
    memory: MemoryConfig,
}

/// Expansion-loop polling cadence: the interrupt is checked on the first
/// expansion and every 256 thereafter, so even litmus-scale explorations see
/// at least one poll and big ones pay one `Instant::now()` per ~256 states.
const INTERRUPT_POLL_MASK: usize = 0xFF;

/// A sorted set of [`Action`]s with inline storage for small sets.
///
/// Sleep sets are built, intersected and retained once per explored
/// transition; almost all of them hold a handful of actions. Backing them
/// with `Vec<Action>` made every one a heap allocation — this small-vec
/// keeps up to [`ActionSet::INLINE`] actions in place (covering the
/// overwhelming majority of sets on the litmus library) and only spills
/// larger sets to the heap.
#[derive(Debug, Clone)]
pub(crate) struct ActionSet {
    repr: ActionSetRepr,
}

#[derive(Debug, Clone)]
enum ActionSetRepr {
    Inline { len: u8, items: [Action; ActionSet::INLINE] },
    Heap(Vec<Action>),
}

impl ActionSet {
    /// Inline capacity before spilling to the heap.
    const INLINE: usize = 6;

    const DUMMY: Action = Action { thread: 0, id: 0, kind: ActionKind::Local, addr: 0 };

    /// The empty set.
    pub(crate) const fn new() -> Self {
        ActionSet {
            repr: ActionSetRepr::Inline { len: 0, items: [ActionSet::DUMMY; ActionSet::INLINE] },
        }
    }

    pub(crate) fn as_slice(&self) -> &[Action] {
        match &self.repr {
            ActionSetRepr::Inline { len, items } => &items[..*len as usize],
            ActionSetRepr::Heap(items) => items,
        }
    }

    /// Membership in the sorted set.
    pub(crate) fn contains(&self, action: &Action) -> bool {
        self.as_slice().binary_search(action).is_ok()
    }

    /// Is `self` a subset of `other`? Both sorted and deduplicated.
    pub(crate) fn is_subset(&self, other: &ActionSet) -> bool {
        self.as_slice().iter().all(|action| other.contains(action))
    }

    /// The intersection of two sorted, deduplicated sets.
    pub(crate) fn intersect(&self, other: &ActionSet) -> ActionSet {
        let mut out = ActionSet::new();
        for action in self.as_slice() {
            if other.contains(action) {
                out.push(*action);
            }
        }
        // Both inputs are sorted, so the filtered copy already is.
        out
    }

    /// Appends an action (possibly out of order — call
    /// [`ActionSet::sort_dedup`] before using set operations).
    pub(crate) fn push(&mut self, action: Action) {
        match &mut self.repr {
            ActionSetRepr::Inline { len, items } => {
                if (*len as usize) < ActionSet::INLINE {
                    items[*len as usize] = action;
                    *len += 1;
                } else {
                    let mut spilled = Vec::with_capacity(ActionSet::INLINE * 2);
                    spilled.extend_from_slice(items);
                    spilled.push(action);
                    self.repr = ActionSetRepr::Heap(spilled);
                }
            }
            ActionSetRepr::Heap(items) => items.push(action),
        }
    }

    /// Is the set heap-backed (i.e. would dropping it free memory)?
    pub(crate) fn is_heap(&self) -> bool {
        matches!(self.repr, ActionSetRepr::Heap(_))
    }

    /// Sorts and deduplicates, restoring the set invariant after pushes.
    pub(crate) fn sort_dedup(&mut self) {
        match &mut self.repr {
            ActionSetRepr::Inline { len, items } => {
                let slice = &mut items[..*len as usize];
                slice.sort_unstable();
                // Slice dedup in place.
                let mut kept = 0usize;
                for index in 0..*len as usize {
                    if kept == 0 || items[kept - 1] != items[index] {
                        items[kept] = items[index];
                        kept += 1;
                    }
                }
                *len = kept as u8;
            }
            ActionSetRepr::Heap(items) => {
                items.sort_unstable();
                items.dedup();
            }
        }
    }

    /// Keeps only the actions satisfying the predicate (preserves order).
    pub(crate) fn retain(&mut self, mut keep: impl FnMut(&Action) -> bool) {
        match &mut self.repr {
            ActionSetRepr::Inline { len, items } => {
                let mut kept = 0usize;
                for index in 0..*len as usize {
                    if keep(&items[index]) {
                        items[kept] = items[index];
                        kept += 1;
                    }
                }
                *len = kept as u8;
            }
            ActionSetRepr::Heap(items) => items.retain(|action| keep(action)),
        }
    }
}

impl PartialEq for ActionSet {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ActionSet {}

/// A persistent set chosen for one state expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Chosen {
    /// No reduction possible: explore every enabled action.
    All,
    /// Explore only the given thread's actions.
    Thread(u32),
    /// Explore exactly one action.
    Single(Action),
}

impl Chosen {
    fn keeps(self, action: &Action) -> bool {
        match self {
            Chosen::All => true,
            Chosen::Thread(thread) => action.thread == thread,
            Chosen::Single(single) => *action == single,
        }
    }
}

/// Persistent-set selection over the transition labels, strongest first.
///
/// Three tiers, all resting on the [`LabeledMachine`] contract
/// (thread-local guards and labels, honest memory addresses):
///
/// 1. **Singleton** — an action that is independent of everything its own
///    thread can do ([`LabeledMachine::own_thread_independent`]) *and*
///    cannot conflict with any other active thread (it is thread-private,
///    or its address misses every other footprint) commutes with every
///    action any sequence of non-chosen actions can ever contain; it is a
///    one-element persistent set and is explored alone.
/// 2. **Thread** — a thread whose enabled actions are all thread-private
///    (`ActionKind::Local`/`ActionKind::Fence`), or whose memory actions
///    are all footprint-disjoint from every other active thread: a read
///    must miss the others' may-write sets, a write must miss their
///    may-access sets ([`LabeledMachine::future_footprint`]).
/// 3. **All** — no candidate qualifies; the state expands fully.
///
/// Only threads with an enabled action are consulted: guards are
/// thread-local, so a thread without one can never be woken by another
/// thread and will never act again. The choice is a pure function of the
/// state, which keeps reduced exploration deterministic in the sequential
/// driver.
fn choose_persistent<M: LabeledMachine>(
    machine: &M,
    state: &M::State,
    labeled: &[(Action, M::State)],
) -> Chosen {
    let mut threads: Vec<u32> = labeled.iter().map(|(action, _)| action.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    if threads.len() <= 1 {
        // A single active thread is vacuously persistent — and there is
        // nothing to prune.
        return Chosen::All;
    }
    let mut footprints: Option<Vec<(u32, Footprint)>> = None;
    let mut cross_thread_safe = |machine: &M, action: &Action| -> bool {
        if !action.kind.touches_memory() {
            return true;
        }
        let footprints = footprints.get_or_insert_with(|| {
            threads
                .iter()
                .map(|&thread| (thread, machine.future_footprint(state, thread as usize)))
                .collect()
        });
        footprints.iter().all(|(other, footprint)| {
            *other == action.thread
                || if action.kind.writes_memory() {
                    !footprint.may_access(action.addr)
                } else {
                    !footprint.may_write(action.addr)
                }
        })
    };

    // Tier 1: a singleton.
    for (action, _) in labeled {
        if machine.own_thread_independent(state, action) && cross_thread_safe(machine, action) {
            return Chosen::Single(*action);
        }
    }
    // Tier 2: a whole thread.
    'candidate: for &candidate in &threads {
        for (action, _) in labeled {
            if action.thread != candidate {
                continue;
            }
            if !cross_thread_safe(machine, action) {
                continue 'candidate;
            }
        }
        return Chosen::Thread(candidate);
    }
    Chosen::All
}

/// Bound on singleton-chain compression steps between interned states.
///
/// Singleton-qualified rules make monotone progress in the shipped machines
/// (they set done/available bits or advance in-order state), so chains
/// cannot cycle; the cap is defensive, and keeps the state limit meaningful
/// for machines whose chains are unexpectedly long.
const MAX_CHAIN: usize = 64;

/// Frontier items a parallel worker claims and expands per batched handoff
/// round. Bounds both the handoff amortization (one lock per destination
/// shard per round instead of one per successor) and the latency before
/// freshly discovered work becomes visible to other workers.
const HANDOFF_BATCH: usize = 16;

/// An early-exit predicate over final-state outcomes (`Sync` so the
/// parallel drivers can consult it from every worker).
type StopFn<'a> = &'a (dyn Fn(&Outcome) -> bool + Sync);

/// Chain compression: advances a freshly produced successor (in place)
/// through states whose persistent set is a *singleton*, without interning
/// the intermediates.
///
/// A state with a one-action persistent set has exactly one outgoing
/// transition in the reduced graph — it is pure bookkeeping on the way to
/// the next genuine choice point, and interning it would only grow
/// `states_visited`. The sleep set is carried along (each chained action
/// drops the entries it is dependent with), and a chained action found in
/// the sleep set prunes the whole remaining chain — the standard sleep-set
/// argument: that continuation is explored from a sibling subtree.
///
/// `buf` is the caller's scratch successor buffer (the
/// [`LabeledMachine::labeled_successors_into`] reuse contract applies);
/// the chosen successor is *swapped* out of it, so a whole chain advances
/// without a single state allocation. Returns `Ok(false)` when the chain
/// was sleep-pruned, `Ok(true)` when `state`/`sleep` hold the chain's end.
fn compress_chain_into<M: LabeledMachine>(
    machine: &M,
    state: &mut M::State,
    sleep: &mut ActionSet,
    touched: &mut Touched,
    canon: bool,
    pruned: &mut usize,
    buf: &mut Vec<(Action, M::State)>,
) -> Result<bool, ExploreError> {
    for _ in 0..MAX_CHAIN {
        if machine.is_final(state) {
            break;
        }
        machine.labeled_successors_into(state, buf);
        if buf.is_empty() {
            return Err(ExploreError::Deadlock);
        }
        let Chosen::Single(action) = choose_persistent(machine, state, buf) else {
            break;
        };
        if sleep.contains(&action) {
            *pruned += 1;
            return Ok(false);
        }
        *pruned += buf.len() - 1;
        let chosen = buf
            .iter_mut()
            .find(|(candidate, _)| *candidate == action)
            .expect("the chosen singleton is enabled");
        std::mem::swap(state, &mut chosen.1);
        touched.add_action(&action);
        if canon {
            machine.canonicalize_in_place(state);
        }
        sleep.retain(|b| machine.independent(&action, b));
    }
    Ok(true)
}

/// What a sequential exploration phase produced: a complete answer, or the
/// accumulated search state handed over to a sharded parallel driver
/// because the state count passed [`ExplorerConfig::parallel_threshold`].
enum SeqOutcome<S> {
    Finished(Exploration, Option<Outcome>),
    Escalated(Seed<S>),
}

/// Everything a sequential phase migrates into the parallel drivers on
/// escalation: the visited set (slot order preserved), the unexpanded
/// frontier as slots into it, and the partial results.
/// Periodic progress reporting for the sequential drivers.
///
/// Construction samples the arming flag once; a disarmed ticker's
/// [`ProgressTicker::tick`] is a branch on a local bool, so the hot loop
/// pays nothing when `--progress` is off. Armed, a line with the state
/// count, frontier depth and states/sec rate goes to stderr every
/// [`PROGRESS_POLL_MASK`]`+1` expansions.
struct ProgressTicker {
    armed: bool,
    started: std::time::Instant,
}

/// Progress cadence: every 16384 expansions (must be `2^n - 1`).
const PROGRESS_POLL_MASK: usize = 0x3FFF;

impl ProgressTicker {
    fn new() -> ProgressTicker {
        ProgressTicker { armed: gam_obs::progress::armed(), started: std::time::Instant::now() }
    }

    fn tick(&self, expansions: usize, states: usize, frontier: usize) {
        if !self.armed || expansions & PROGRESS_POLL_MASK != 0 {
            return;
        }
        let us = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX).max(1);
        let rate = (states as u64).saturating_mul(1_000_000) / us;
        gam_obs::progress!("explore", "{states} states, frontier {frontier}, {rate} states/sec");
    }
}

/// Notes a sequential-to-sharded escalation on the progress and trace
/// streams (the *escalation point* of an adaptive run).
fn note_escalation<S>(seed: &Seed<S>) {
    gam_obs::progress!(
        "explore",
        "escalating to sharded search: {} states, frontier {}",
        seed.states.len(),
        seed.pending.len()
    );
    gam_obs::trace::event(
        "explore.escalate",
        &[("states", seed.states.len().to_string()), ("frontier", seed.pending.len().to_string())],
    );
}

struct Seed<S> {
    states: Vec<S>,
    pending: Vec<u32>,
    outcomes: BTreeSet<Outcome>,
    final_states: usize,
    pruned: usize,
    /// Per-slot reduction bookkeeping (reduced explorations only).
    sleep: Option<SleepSeed>,
}

/// The per-slot sleep-set bookkeeping of a reduced exploration, parallel to
/// [`Seed::states`].
struct SleepSeed {
    sleep_sets: Vec<ActionSet>,
    expanded_with: Vec<Option<ActionSet>>,
}

/// Soft watermark of the memory ladder: degradation starts at 80% of the
/// hard budget, leaving headroom for the work between polls.
const SOFT_WATERMARK_NUM: usize = 4;
const SOFT_WATERMARK_DEN: usize = 5;

/// Rows moved per spill segment. Large enough that segment files amortize
/// their framing and the one-segment read cache covers real locality; small
/// enough that one spill round reacts to pressure promptly.
const SPILL_CHUNK_ROWS: usize = 64 * 1024;

/// Rows always kept resident: the hot tail the DFS is actively revisiting.
const MIN_RESIDENT_ROWS: usize = 256;

/// Minimum interned-state growth between two sleep-cache flushes, so the
/// ladder's first rung does not spin when flushing frees little.
const FLUSH_SPACING_STATES: usize = 1024;

/// Snapshot driver tags ([`CheckpointPlan`] payload versioning within the
/// `gam-explore-checkpoint/v1` record that wraps these bytes).
const SNAP_COMPOSED: u8 = 1;
const SNAP_REDUCED: u8 = 2;

/// The memory governor of a budgeted composed exploration: refreshes the
/// [`MemoryAccountant`] at poll cadence and walks the degradation ladder
/// (flush sleep caches → spill cold rows → hard stop).
struct MemGovernor {
    max_bytes: usize,
    soft_bytes: usize,
    acct: MemoryAccountant,
    /// Cleared after a spill *write* failure: rows stay resident from then
    /// on (already-written segments remain readable).
    spill_enabled: bool,
    /// Arena size at which the next sleep-cache flush is allowed.
    next_flush_ok_at: usize,
}

impl MemGovernor {
    fn new(memory: &MemoryConfig) -> Option<MemGovernor> {
        let max_bytes = memory.max_bytes?;
        Some(MemGovernor {
            max_bytes,
            soft_bytes: max_bytes / SOFT_WATERMARK_DEN * SOFT_WATERMARK_NUM,
            acct: MemoryAccountant::new(),
            spill_enabled: true,
            next_flush_ok_at: 0,
        })
    }

    /// Refreshes every category from the live structures and returns the
    /// accounted total. All inputs are length-based (never capacity-based),
    /// so the figures are identical across a checkpoint resume.
    fn refresh<S: ComposedState>(
        &mut self,
        arena: &ComponentArena<S>,
        frontier_len: usize,
        sleep_bytes: usize,
    ) -> usize {
        let (component, id_table, index) = arena.account();
        self.acct.component_bytes = component;
        self.acct.id_table_bytes = id_table;
        self.acct.index_bytes = index;
        self.acct.frontier_bytes = frontier_len * std::mem::size_of::<u32>();
        self.acct.sleep_bytes = sleep_bytes;
        // Spill figures come from the arena, not a running tally, so a
        // resumed exploration reports the segments it inherited.
        let (spilled_bytes, spill_segments) = arena.spill_stats();
        self.acct.spilled_bytes = spilled_bytes;
        self.acct.spill_segments = spill_segments;
        self.acct.note_peak()
    }

    fn stats(&self) -> MemoryStats {
        MemoryStats {
            peak_bytes: self.acct.peak_bytes,
            spilled_bytes: self.acct.spilled_bytes,
            spill_segments: self.acct.spill_segments,
            sleep_flushes: self.acct.sleep_flushes,
        }
    }

    /// One governance round at poll cadence: refresh the accounts, degrade
    /// while over the soft watermark, stop the run at the hard limit.
    ///
    /// `sleep` carries the reduced driver's per-slot bookkeeping (the
    /// unreduced driver passes `None`). Flushing it is sound: an emptied
    /// sleep set or a cleared expansion cache only causes redundant
    /// re-expansion, never a missed state.
    fn govern<S: ComposedState>(
        &mut self,
        arena: &mut ComponentArena<S>,
        frontier_len: usize,
        sleep: Option<(&mut Vec<ActionSet>, &mut Vec<Option<ActionSet>>)>,
    ) -> Result<(), StopReason> {
        let sleep_bytes = sleep.as_ref().map_or(0, |(sets, expanded)| {
            sets.len() * std::mem::size_of::<ActionSet>()
                + expanded.len() * std::mem::size_of::<Option<ActionSet>>()
        });
        let mut total = self.refresh(arena, frontier_len, sleep_bytes);
        if total < self.soft_bytes {
            return Ok(());
        }
        // Rung 1: drop the heap-backed sleep bookkeeping. The accounted
        // total only tracks the inline footprint, so this rung relieves real
        // RSS without moving the deterministic figure — the ladder does not
        // wait on it.
        if let Some((sets, expanded)) = sleep {
            if arena.len() >= self.next_flush_ok_at {
                for set in sets.iter_mut() {
                    if set.is_heap() {
                        *set = ActionSet::new();
                    }
                }
                for entry in expanded.iter_mut() {
                    if entry.as_ref().is_some_and(ActionSet::is_heap) {
                        *entry = None;
                    }
                }
                self.acct.sleep_flushes += 1;
                self.next_flush_ok_at = arena.len() + FLUSH_SPACING_STATES;
                gam_obs::trace::event(
                    "explore.sleep_flush",
                    &[("states", arena.len().to_string())],
                );
            }
        }
        // Rung 2: spill the oldest resident rows until back under the soft
        // watermark (or out of spillable rows). A write failure stops
        // spilling for good but never the exploration.
        while total >= self.soft_bytes
            && self.spill_enabled
            && arena.spill_armed()
            && arena.resident_rows() > MIN_RESIDENT_ROWS
        {
            let rows = (arena.resident_rows() - MIN_RESIDENT_ROWS).min(SPILL_CHUNK_ROWS);
            match arena.spill_oldest(rows) {
                Ok(0) => break,
                Ok(bytes) => {
                    total = self.refresh(arena, frontier_len, sleep_bytes);
                    gam_obs::trace::event(
                        "explore.spill",
                        &[
                            ("bytes", bytes.to_string()),
                            ("spilled_total", self.acct.spilled_bytes.to_string()),
                        ],
                    );
                }
                Err(err) => {
                    gam_obs::trace::event("explore.spill_write_failed", &[("error", err.message)]);
                    self.spill_enabled = false;
                    arena.disarm_spill();
                    break;
                }
            }
        }
        // Rung 3: every degradation step taken (or unavailable) and still
        // over the hard limit — stop with sound partial outcomes.
        if total >= self.max_bytes {
            return Err(StopReason::MemoryBudget { budget: self.max_bytes });
        }
        Ok(())
    }
}

/// Maps a cold-row read failure (lost/corrupt/fault-injected segment) to the
/// memory-budget stop: the visited set is no longer fully consultable, so
/// continuing could mis-deduplicate — the sound move is to surface the
/// partial outcomes as an inconclusive.
fn spill_read_interrupt(
    budget: usize,
    states_visited: usize,
    outcomes: &BTreeSet<Outcome>,
    err: &SpillError,
) -> ExploreError {
    gam_obs::trace::event("explore.spill_read_failed", &[("error", err.message.clone())]);
    ExploreError::Interrupted {
        reason: StopReason::MemoryBudget { budget },
        states_visited,
        partial_outcomes: outcomes.clone(),
    }
}

fn encode_action(action: &Action, out: &mut Vec<u8>) {
    codec::put_u32(out, action.thread);
    codec::put_u32(out, action.id);
    codec::put_u8(
        out,
        match action.kind {
            ActionKind::Local => 0,
            ActionKind::Fence => 1,
            ActionKind::MemoryRead => 2,
            ActionKind::MemoryCommit => 3,
            ActionKind::BufferDrain => 4,
        },
    );
    codec::put_u64(out, action.addr);
}

fn decode_action(input: &mut &[u8]) -> Option<Action> {
    let thread = codec::take_u32(input)?;
    let id = codec::take_u32(input)?;
    let kind = match codec::take_u8(input)? {
        0 => ActionKind::Local,
        1 => ActionKind::Fence,
        2 => ActionKind::MemoryRead,
        3 => ActionKind::MemoryCommit,
        4 => ActionKind::BufferDrain,
        _ => return None,
    };
    let addr = codec::take_u64(input)?;
    Some(Action { thread, id, kind, addr })
}

fn encode_action_set(set: &ActionSet, out: &mut Vec<u8>) {
    let actions = set.as_slice();
    codec::put_u32(out, u32::try_from(actions.len()).expect("set fits u32"));
    for action in actions {
        encode_action(action, out);
    }
}

fn decode_action_set(input: &mut &[u8]) -> Option<ActionSet> {
    let len = codec::take_u32(input)? as usize;
    let mut set = ActionSet::new();
    for _ in 0..len {
        set.push(decode_action(input)?);
    }
    // Encoded from a valid set, so already sorted — but cheap to re-assert
    // the invariant against hand-edited payloads.
    set.sort_dedup();
    Some(set)
}

fn encode_outcome(outcome: &Outcome, out: &mut Vec<u8>) {
    codec::put_u32(out, u32::try_from(outcome.len()).expect("outcome fits u32"));
    for (observation, value) in outcome.iter() {
        match observation {
            Observation::Register(proc, reg) => {
                codec::put_u8(out, 0);
                codec::put_u64(out, proc.index() as u64);
                codec::put_u32(out, reg.index());
            }
            Observation::Memory(loc) => {
                codec::put_u8(out, 1);
                codec::put_u64(out, loc.address());
            }
        }
        codec::put_u64(out, value.raw());
    }
}

fn decode_outcome(input: &mut &[u8]) -> Option<Outcome> {
    let len = codec::take_u32(input)? as usize;
    let mut pairs = Vec::with_capacity(len);
    for _ in 0..len {
        let observation = match codec::take_u8(input)? {
            0 => {
                let proc = ProcId::new(usize::try_from(codec::take_u64(input)?).ok()?);
                let reg = Reg::new(codec::take_u32(input)?);
                Observation::Register(proc, reg)
            }
            1 => Observation::Memory(Loc::from_address(codec::take_u64(input)?)),
            _ => return None,
        };
        let value = Value::new(codec::take_u64(input)?);
        pairs.push((observation, value));
    }
    Some(pairs.into_iter().collect())
}

/// The decoded search state of a composed sequential driver, mid-run.
struct SeqSnapshot<S: ComposedState> {
    expansions: usize,
    final_states: usize,
    pruned: usize,
    outcomes: BTreeSet<Outcome>,
    arena: ComponentArena<S>,
    stack: Vec<u32>,
    /// `(sleep_sets, expanded_with)` — [`SNAP_REDUCED`] snapshots only.
    sleep: Option<(Vec<ActionSet>, Vec<Option<ActionSet>>)>,
}

/// Encodes the complete search state of a composed sequential driver.
/// Everything a resumed run needs to continue with identical counters is
/// here; accounted-memory peaks are deliberately *not* (they restart from
/// the resumed footprint).
#[allow(clippy::too_many_arguments)] // a plain serialization point, not an API
fn encode_snapshot<S: ComposedState>(
    tag: u8,
    expansions: usize,
    final_states: usize,
    pruned: usize,
    outcomes: &BTreeSet<Outcome>,
    arena: &ComponentArena<S>,
    stack: &[u32],
    sleep: Option<(&[ActionSet], &[Option<ActionSet>])>,
) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u8(&mut out, tag);
    codec::put_usize(&mut out, expansions);
    codec::put_usize(&mut out, final_states);
    codec::put_usize(&mut out, pruned);
    codec::put_u32(&mut out, u32::try_from(outcomes.len()).expect("outcomes fit u32"));
    for outcome in outcomes {
        encode_outcome(outcome, &mut out);
    }
    arena.encode(&mut out);
    codec::put_usize(&mut out, stack.len());
    for &slot in stack {
        codec::put_u32(&mut out, slot);
    }
    if let Some((sleep_sets, expanded_with)) = sleep {
        codec::put_usize(&mut out, sleep_sets.len());
        for set in sleep_sets {
            encode_action_set(set, &mut out);
        }
        codec::put_usize(&mut out, expanded_with.len());
        for entry in expanded_with {
            match entry {
                Some(set) => {
                    codec::put_u8(&mut out, 1);
                    encode_action_set(set, &mut out);
                }
                None => codec::put_u8(&mut out, 0),
            }
        }
    }
    out
}

/// Decodes an [`encode_snapshot`] payload, re-reading spilled segments from
/// `spill_dir` to rebuild the dedup index.
fn decode_snapshot<S: ComposedState>(
    bytes: &[u8],
    expected_tag: u8,
    num_procs: usize,
    spill_dir: Option<&std::path::Path>,
) -> Result<SeqSnapshot<S>, String> {
    let truncated = || "truncated exploration snapshot".to_string();
    let input = &mut &bytes[..];
    let tag = codec::take_u8(input).ok_or_else(truncated)?;
    if tag != expected_tag {
        return Err(format!("snapshot driver tag {tag} does not match this run"));
    }
    let expansions = codec::take_usize(input).ok_or_else(truncated)?;
    let final_states = codec::take_usize(input).ok_or_else(truncated)?;
    let pruned = codec::take_usize(input).ok_or_else(truncated)?;
    let outcome_count = codec::take_u32(input).ok_or_else(truncated)? as usize;
    let mut outcomes = BTreeSet::new();
    for _ in 0..outcome_count {
        outcomes.insert(decode_outcome(input).ok_or_else(truncated)?);
    }
    let arena = ComponentArena::decode(input, num_procs, spill_dir)?;
    let stack_len = codec::take_usize(input).ok_or_else(truncated)?;
    let mut stack = Vec::with_capacity(stack_len);
    for _ in 0..stack_len {
        let slot = codec::take_u32(input).ok_or_else(truncated)?;
        if (slot as usize) >= arena.len() {
            return Err(format!("snapshot frontier references unknown slot {slot}"));
        }
        stack.push(slot);
    }
    let sleep = if tag == SNAP_REDUCED {
        let sets_len = codec::take_usize(input).ok_or_else(truncated)?;
        let mut sleep_sets = Vec::with_capacity(sets_len);
        for _ in 0..sets_len {
            sleep_sets.push(decode_action_set(input).ok_or_else(truncated)?);
        }
        let expanded_len = codec::take_usize(input).ok_or_else(truncated)?;
        let mut expanded_with = Vec::with_capacity(expanded_len);
        for _ in 0..expanded_len {
            let entry = match codec::take_u8(input).ok_or_else(truncated)? {
                0 => None,
                1 => Some(decode_action_set(input).ok_or_else(truncated)?),
                _ => return Err("bad expansion-cache flag in snapshot".to_string()),
            };
            expanded_with.push(entry);
        }
        if sleep_sets.len() != arena.len() || expanded_with.len() != arena.len() {
            return Err("snapshot sleep bookkeeping does not cover the arena".to_string());
        }
        Some((sleep_sets, expanded_with))
    } else {
        None
    };
    if !input.is_empty() {
        return Err("trailing bytes after exploration snapshot".to_string());
    }
    Ok(SeqSnapshot { expansions, final_states, pruned, outcomes, arena, stack, sleep })
}

impl Explorer {
    /// Creates an explorer with the given limits.
    #[must_use]
    pub fn new(config: ExplorerConfig) -> Self {
        Explorer { config, interrupt: Interrupt::none(), memory: MemoryConfig::default() }
    }

    /// Attaches a cooperative [`Interrupt`] (cancel token and/or wall-clock
    /// deadline). Every expansion loop — sequential and sharded — polls it
    /// and stops with [`ExploreError::Interrupted`], carrying the partial
    /// outcomes collected so far.
    #[must_use]
    pub fn with_interrupt(mut self, interrupt: Interrupt) -> Self {
        self.interrupt = interrupt;
        self
    }

    /// Attaches a [`MemoryConfig`]: a hard accounted-byte budget with a
    /// spill-to-disk degradation ladder, and/or intra-exploration
    /// checkpointing. Only the composed sequential drivers honour it; arming
    /// a budget or a checkpoint plan disables the escalation to the sharded
    /// parallel driver (the run stays sequential and deterministic).
    #[must_use]
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// The explorer's configuration.
    #[must_use]
    pub fn config(&self) -> ExplorerConfig {
        self.config
    }

    /// The explorer's memory-pressure configuration.
    #[must_use]
    pub fn memory(&self) -> &MemoryConfig {
        &self.memory
    }

    /// The escalation budget of a sequential phase: `None` runs sequential
    /// to completion, `Some(n)` hands over to the sharded drivers once more
    /// than `n` states are interned with frontier work remaining. Memory
    /// budgets and checkpoint plans pin the run to the sequential driver.
    fn escalation(&self) -> Option<usize> {
        (self.config.parallelism > 1 && !self.memory.armed())
            .then_some(self.config.parallel_threshold)
    }

    /// Exhaustively explores the machine and collects every reachable final
    /// outcome, with the configured [`Reduction`], storing full states in
    /// the visited set.
    ///
    /// With [`ExplorerConfig::parallelism`] above 1 the exploration is
    /// *adaptive*: it starts sequentially and escalates to the sharded
    /// parallel driver only once the state count passes
    /// [`ExplorerConfig::parallel_threshold`] — small state spaces never
    /// pay thread overhead. Machines whose state implements
    /// [`crate::arena::ComposedState`] should prefer
    /// [`Explorer::explore_composed`], which additionally shares state
    /// components across the visited set.
    ///
    /// The `Sync`/`Send` bounds exist for the parallel mode; a machine with a
    /// thread-bound state can still use
    /// [`Explorer::explore_sequential`] directly.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::StateLimitExceeded`] if the state space is
    /// larger than the configured limit, and [`ExploreError::Deadlock`] if a
    /// non-final state has no successor.
    pub fn explore<M: LabeledMachine + Sync>(
        &self,
        machine: &M,
    ) -> Result<Exploration, ExploreError>
    where
        M::State: Send,
    {
        self.run_plain(machine, None).map(|(exploration, _)| exploration)
    }

    /// [`Explorer::explore`] over the component arena: visited states are
    /// stored as rows of hash-consed component ids
    /// ([`crate::arena::ComponentArena`]), so unchanged per-proc states and
    /// memory maps are shared across the whole visited set and successor
    /// deduplication hashes only the components an expansion actually
    /// changed. This is the production path of `OperationalChecker`.
    ///
    /// # Errors
    ///
    /// See [`Explorer::explore`].
    pub fn explore_composed<M>(&self, machine: &M) -> Result<Exploration, ExploreError>
    where
        M: LabeledMachine + Sync,
        M::State: ComposedState + Send,
    {
        self.run_composed(machine, None).map(|(exploration, _)| exploration)
    }

    /// Searches for a final state whose outcome satisfies `matches` and
    /// returns that outcome, or `None` after exhausting the (possibly
    /// reduced) state space without a match.
    ///
    /// This is the early-exit entry point behind `check`/`find_witness`: the
    /// search stops at the *first* matching final state instead of
    /// enumerating the complete outcome set, and honours the configured
    /// [`Reduction`] and the adaptive parallelism — a forbidden verdict
    /// still has to exhaust the state space, so the sharded workers matter
    /// exactly there.
    ///
    /// # Errors
    ///
    /// See [`Explorer::explore`]. A state-limit abort without a witness is
    /// reported as an error (the absence of a witness was not proven).
    pub fn find_outcome<M, F>(
        &self,
        machine: &M,
        matches: F,
    ) -> Result<Option<Outcome>, ExploreError>
    where
        M: LabeledMachine + Sync,
        M::State: Send,
        F: Fn(&Outcome) -> bool + Sync,
    {
        let stop: StopFn = &matches;
        self.run_plain(machine, Some(stop)).map(|(_, witness)| witness)
    }

    /// [`Explorer::find_outcome`] over the component arena (see
    /// [`Explorer::explore_composed`]).
    ///
    /// # Errors
    ///
    /// See [`Explorer::find_outcome`].
    pub fn find_outcome_composed<M, F>(
        &self,
        machine: &M,
        matches: F,
    ) -> Result<Option<Outcome>, ExploreError>
    where
        M: LabeledMachine + Sync,
        M::State: ComposedState + Send,
        F: Fn(&Outcome) -> bool + Sync,
    {
        let stop: StopFn = &matches;
        self.run_composed(machine, Some(stop)).map(|(_, witness)| witness)
    }

    /// Single-threaded exploration, available without the thread-safety
    /// bounds of [`Explorer::explore`] (ignores
    /// [`ExplorerConfig::parallelism`] and [`ExplorerConfig::reduction`]).
    ///
    /// # Errors
    ///
    /// See [`Explorer::explore`].
    pub fn explore_sequential<M: AbstractMachine>(
        &self,
        machine: &M,
    ) -> Result<Exploration, ExploreError> {
        match self.seq_plain(machine, None, None)? {
            SeqOutcome::Finished(exploration, _) => Ok(exploration),
            SeqOutcome::Escalated(_) => unreachable!("no escalation budget was given"),
        }
    }

    /// The pre-refactor plain-state sequential path, honouring the
    /// configured [`Reduction`] but never sharding: full states in the
    /// visited set, no component interning. Kept as the reference oracle
    /// the differential test-suites compare the component-interned
    /// production path against.
    ///
    /// # Errors
    ///
    /// See [`Explorer::explore`].
    #[doc(hidden)]
    pub fn explore_reference<M: LabeledMachine>(
        &self,
        machine: &M,
    ) -> Result<Exploration, ExploreError> {
        let result = match self.config.reduction {
            Reduction::Off => self.seq_plain(machine, None, None)?,
            mode => self.seq_plain_reduced(machine, mode.canonicalizes(), None, None)?,
        };
        match result {
            SeqOutcome::Finished(exploration, _) => Ok(exploration),
            SeqOutcome::Escalated(_) => unreachable!("no escalation budget was given"),
        }
    }

    /// Dispatch over plain full-state storage.
    fn run_plain<M: LabeledMachine + Sync>(
        &self,
        machine: &M,
        stop: Option<StopFn>,
    ) -> Result<(Exploration, Option<Outcome>), ExploreError>
    where
        M::State: Send,
    {
        fault::hit("explore");
        match self.config.reduction {
            Reduction::Off => {
                let outcome = {
                    let _phase = gam_obs::phase("explore_seq");
                    self.seq_plain(machine, stop, self.escalation())?
                };
                match outcome {
                    SeqOutcome::Finished(exploration, witness) => Ok((exploration, witness)),
                    SeqOutcome::Escalated(seed) => {
                        note_escalation(&seed);
                        let _phase = gam_obs::phase("explore_sharded");
                        self.parallel_seeded(machine, stop, seed)
                    }
                }
            }
            mode => {
                let canon = mode.canonicalizes();
                let outcome = {
                    let _phase = gam_obs::phase("explore_seq");
                    self.seq_plain_reduced(machine, canon, stop, self.escalation())?
                };
                match outcome {
                    SeqOutcome::Finished(exploration, witness) => Ok((exploration, witness)),
                    SeqOutcome::Escalated(seed) => {
                        note_escalation(&seed);
                        let _phase = gam_obs::phase("explore_sharded");
                        self.parallel_reduced_seeded(machine, canon, stop, seed)
                    }
                }
            }
        }
    }

    /// Dispatch over the component arena.
    fn run_composed<M>(
        &self,
        machine: &M,
        stop: Option<StopFn>,
    ) -> Result<(Exploration, Option<Outcome>), ExploreError>
    where
        M: LabeledMachine + Sync,
        M::State: ComposedState + Send,
    {
        fault::hit("explore");
        match self.config.reduction {
            Reduction::Off => {
                let outcome = {
                    let _phase = gam_obs::phase("explore_seq");
                    self.seq_composed(machine, stop, self.escalation())?
                };
                match outcome {
                    SeqOutcome::Finished(exploration, witness) => Ok((exploration, witness)),
                    SeqOutcome::Escalated(seed) => {
                        note_escalation(&seed);
                        let _phase = gam_obs::phase("explore_sharded");
                        self.parallel_seeded(machine, stop, seed)
                    }
                }
            }
            mode => {
                let canon = mode.canonicalizes();
                let outcome = {
                    let _phase = gam_obs::phase("explore_seq");
                    self.seq_composed_reduced(machine, canon, stop, self.escalation())?
                };
                match outcome {
                    SeqOutcome::Finished(exploration, witness) => Ok((exploration, witness)),
                    SeqOutcome::Escalated(seed) => {
                        note_escalation(&seed);
                        let _phase = gam_obs::phase("explore_sharded");
                        self.parallel_reduced_seeded(machine, canon, stop, seed)
                    }
                }
            }
        }
    }

    /// The unreduced sequential driver over plain full-state interning.
    fn seq_plain<M: AbstractMachine>(
        &self,
        machine: &M,
        stop: Option<StopFn>,
        escalate: Option<usize>,
    ) -> Result<SeqOutcome<M::State>, ExploreError> {
        let mut visited: InternedStates<M::State> = InternedStates::default();
        let mut stack: Vec<u32> = Vec::new();
        let mut outcomes = BTreeSet::new();
        let mut final_states = 0usize;

        let initial = machine.initial_state();
        stack.push(visited.insert(initial).expect("initial state is new"));

        let interrupt_armed = self.interrupt.is_armed();
        let progress = ProgressTicker::new();
        let mut expansions = 0usize;
        while let Some(index) = stack.pop() {
            if interrupt_armed && expansions & INTERRUPT_POLL_MASK == 0 {
                if let Some(reason) = self.interrupt.triggered() {
                    return Err(ExploreError::Interrupted {
                        reason,
                        states_visited: visited.len(),
                        partial_outcomes: outcomes,
                    });
                }
            }
            progress.tick(expansions, visited.len(), stack.len());
            expansions += 1;
            // The borrow of the interned state ends with each call, so the
            // arena can keep growing while the successors are inserted.
            let successors = machine.successors(visited.get(index));
            if machine.is_final(visited.get(index)) {
                // A state can be final while still having enabled rules (e.g.
                // a fetch past the interesting instructions); record it
                // either way.
                final_states += 1;
                let outcome = machine.outcome(visited.get(index));
                if stop.is_some_and(|matches| matches(&outcome)) {
                    outcomes.insert(outcome.clone());
                    let exploration = Exploration {
                        outcomes,
                        states_visited: visited.len(),
                        final_states,
                        transitions_pruned: 0,
                        arena: None,
                        memory: None,
                    };
                    return Ok(SeqOutcome::Finished(exploration, Some(outcome)));
                }
                outcomes.insert(outcome);
            } else if successors.is_empty() {
                return Err(ExploreError::Deadlock);
            }
            for next in successors {
                if let Some(new_index) = visited.insert(next) {
                    if visited.len() > self.config.max_states {
                        return Err(ExploreError::StateLimitExceeded {
                            limit: self.config.max_states,
                            states_visited: visited.len(),
                            partial_outcomes: outcomes,
                        });
                    }
                    stack.push(new_index);
                }
            }
            if let Some(threshold) = escalate {
                if visited.len() > threshold && !stack.is_empty() {
                    return Ok(SeqOutcome::Escalated(Seed {
                        states: visited.into_states(),
                        pending: stack,
                        outcomes,
                        final_states,
                        pruned: 0,
                        sleep: None,
                    }));
                }
            }
        }

        let exploration = Exploration {
            outcomes,
            states_visited: visited.len(),
            final_states,
            transitions_pruned: 0,
            arena: None,
            memory: None,
        };
        Ok(SeqOutcome::Finished(exploration, None))
    }

    /// The unreduced sequential driver over the component arena: the
    /// expansion state is reassembled into one scratch buffer, successors
    /// are produced through the pooled
    /// [`LabeledMachine::labeled_successors_into`] buffer, and every
    /// successor is deduplicated against its parent's component row.
    fn seq_composed<M>(
        &self,
        machine: &M,
        stop: Option<StopFn>,
        escalate: Option<usize>,
    ) -> Result<SeqOutcome<M::State>, ExploreError>
    where
        M: LabeledMachine,
        M::State: ComposedState,
    {
        let mut current = machine.initial_state();
        let num_procs = current.procs().len();
        let (mut arena, mut stack, mut outcomes, mut final_states, mut expansions) =
            match self.try_resume::<M::State>(SNAP_COMPOSED, num_procs) {
                Some(snap) => {
                    (snap.arena, snap.stack, snap.outcomes, snap.final_states, snap.expansions)
                }
                None => {
                    let mut arena: ComponentArena<M::State> = ComponentArena::new(num_procs);
                    let root = arena.intern_root(&current);
                    (arena, vec![root], BTreeSet::new(), 0usize, 0usize)
                }
            };
        self.arm_spill(&mut arena, num_procs);
        let mut governor = MemGovernor::new(&self.memory);
        let plan = self.memory.checkpoint.clone();
        let hard_budget = self.memory.max_bytes.unwrap_or(0);
        let mut succ: Vec<(Action, M::State)> = Vec::new();

        let interrupt_armed = self.interrupt.is_armed();
        let progress = ProgressTicker::new();
        loop {
            if expansions & INTERRUPT_POLL_MASK == 0 {
                if interrupt_armed {
                    if let Some(reason) = self.interrupt.triggered() {
                        return Err(ExploreError::Interrupted {
                            reason,
                            states_visited: arena.len(),
                            partial_outcomes: outcomes,
                        });
                    }
                }
                if let Some(gov) = governor.as_mut() {
                    if let Err(reason) = gov.govern(&mut arena, stack.len(), None) {
                        return Err(ExploreError::Interrupted {
                            reason,
                            states_visited: arena.len(),
                            partial_outcomes: outcomes,
                        });
                    }
                }
            }
            if let Some(plan) = &plan {
                if plan.every_expansions != 0
                    && expansions != 0
                    && expansions % plan.every_expansions == 0
                {
                    let bytes = encode_snapshot(
                        SNAP_COMPOSED,
                        expansions,
                        final_states,
                        0,
                        &outcomes,
                        &arena,
                        &stack,
                        None,
                    );
                    (plan.sink)(&bytes);
                }
            }
            let Some(slot) = stack.pop() else { break };
            progress.tick(expansions, arena.len(), stack.len());
            expansions += 1;
            arena
                .load(slot, &mut current)
                .map_err(|err| spill_read_interrupt(hard_budget, arena.len(), &outcomes, &err))?;
            // Sparse successors: each is valid only in the components its
            // action touched — exactly the components `intern_touched`
            // consults below. Nothing else ever reads them.
            machine.labeled_successors_sparse_into(&current, &mut succ);
            if machine.is_final(&current) {
                final_states += 1;
                let outcome = machine.outcome(&current);
                if stop.is_some_and(|matches| matches(&outcome)) {
                    outcomes.insert(outcome.clone());
                    let exploration = Exploration {
                        outcomes,
                        states_visited: arena.len(),
                        final_states,
                        transitions_pruned: 0,
                        arena: Some(arena.occupancy()),
                        memory: governor.as_ref().map(MemGovernor::stats),
                    };
                    return Ok(SeqOutcome::Finished(exploration, Some(outcome)));
                }
                outcomes.insert(outcome);
            } else if succ.is_empty() {
                return Err(ExploreError::Deadlock);
            }
            for (action, next) in &succ {
                let (next_slot, is_new) =
                    arena.intern_touched_sparse(next, slot, Touched::from_action(action)).map_err(
                        |err| spill_read_interrupt(hard_budget, arena.len(), &outcomes, &err),
                    )?;
                if is_new {
                    if arena.len() > self.config.max_states {
                        return Err(ExploreError::StateLimitExceeded {
                            limit: self.config.max_states,
                            states_visited: arena.len(),
                            partial_outcomes: outcomes,
                        });
                    }
                    stack.push(next_slot);
                }
            }
            if let Some(threshold) = escalate {
                if arena.len() > threshold && !stack.is_empty() {
                    return Ok(SeqOutcome::Escalated(Seed {
                        states: arena.export_states(&current),
                        pending: stack,
                        outcomes,
                        final_states,
                        pruned: 0,
                        sleep: None,
                    }));
                }
            }
        }

        let exploration = Exploration {
            outcomes,
            states_visited: arena.len(),
            final_states,
            transitions_pruned: 0,
            arena: Some(arena.occupancy()),
            memory: governor.as_ref().map(MemGovernor::stats),
        };
        Ok(SeqOutcome::Finished(exploration, None))
    }

    /// Decodes the configured resume snapshot, if any. An undecodable or
    /// mismatched snapshot is reported on the trace stream and ignored — the
    /// exploration restarts from scratch, which is sound (just slower).
    fn try_resume<S: ComposedState>(&self, tag: u8, num_procs: usize) -> Option<SeqSnapshot<S>> {
        let plan = self.memory.checkpoint.as_ref()?;
        let bytes = plan.resume.as_ref()?;
        match decode_snapshot(bytes, tag, num_procs, self.memory.spill_dir.as_deref()) {
            Ok(snap) => {
                gam_obs::trace::event(
                    "explore.resume",
                    &[
                        ("expansions", snap.expansions.to_string()),
                        ("states", snap.arena.len().to_string()),
                    ],
                );
                Some(snap)
            }
            Err(message) => {
                gam_obs::trace::event("explore.resume_failed", &[("error", message)]);
                None
            }
        }
    }

    /// Arms the spill store on a fresh or resumed arena when a budget and a
    /// spill directory are both configured. An unusable directory is
    /// reported and spilling stays off (the ladder degrades straight to the
    /// hard stop).
    fn arm_spill<S: ComposedState>(&self, arena: &mut ComponentArena<S>, num_procs: usize) {
        if self.memory.max_bytes.is_none() || arena.spill_armed() {
            return;
        }
        let Some(dir) = &self.memory.spill_dir else { return };
        match SpillStore::new(dir, 1 + num_procs) {
            Ok(store) => arena.arm_spill(store),
            Err(err) => {
                gam_obs::trace::event("explore.spill_dir_failed", &[("error", err.message)]);
            }
        }
    }

    /// The reduced sequential driver over plain full-state interning:
    /// persistent sets + sleep sets, with optional canonicalization and an
    /// optional early-exit predicate.
    ///
    /// Each interned state stores the smallest sleep set it has been reached
    /// with; reaching it again with a sleep set that is not a superset
    /// shrinks the stored set to the intersection and re-queues the state,
    /// so every visit's exploration obligations are eventually met. The
    /// stored set shrinks strictly on every re-queue, so the search
    /// terminates.
    fn seq_plain_reduced<M: LabeledMachine>(
        &self,
        machine: &M,
        canon: bool,
        stop: Option<StopFn>,
        escalate: Option<usize>,
    ) -> Result<SeqOutcome<M::State>, ExploreError> {
        let mut visited: InternedStates<M::State> = InternedStates::default();
        // Per-slot reduction book-keeping, parallel to the arena: the
        // smallest sleep set seen, and the sleep set of the last expansion
        // (`None` = never expanded).
        let mut sleep_sets: Vec<ActionSet> = Vec::new();
        let mut expanded_with: Vec<Option<ActionSet>> = Vec::new();
        let mut stack: Vec<u32> = Vec::new();
        let mut succ: Vec<(Action, M::State)> = Vec::new();
        let mut chain_buf: Vec<(Action, M::State)> = Vec::new();
        let mut explored: Vec<Action> = Vec::new();
        let mut outcomes = BTreeSet::new();
        let mut final_states = 0usize;
        let mut pruned = 0usize;

        let initial = {
            let mut state = machine.initial_state();
            if canon {
                machine.canonicalize_in_place(&mut state);
            }
            state
        };
        // A scratch state the chain compressor advances through; primed
        // with arbitrary buffers of the right shape.
        let mut chain_state = initial.clone();
        let (slot, _) = visited.intern(initial);
        sleep_sets.push(ActionSet::new());
        expanded_with.push(None);
        stack.push(slot);

        let interrupt_armed = self.interrupt.is_armed();
        let progress = ProgressTicker::new();
        let mut expansions = 0usize;
        while let Some(slot) = stack.pop() {
            if interrupt_armed && expansions & INTERRUPT_POLL_MASK == 0 {
                if let Some(reason) = self.interrupt.triggered() {
                    return Err(ExploreError::Interrupted {
                        reason,
                        states_visited: visited.len(),
                        partial_outcomes: outcomes,
                    });
                }
            }
            progress.tick(expansions, visited.len(), stack.len());
            expansions += 1;
            let z = sleep_sets[slot as usize].clone();
            if let Some(previous) = &expanded_with[slot as usize] {
                if previous.is_subset(&z) {
                    // Already expanded with an equal or smaller sleep set:
                    // the pending obligations were covered.
                    continue;
                }
            }
            let first_expansion = expanded_with[slot as usize].is_none();
            expanded_with[slot as usize] = Some(z.clone());

            machine.labeled_successors_into(visited.get(slot), &mut succ);
            if machine.is_final(visited.get(slot)) {
                if first_expansion {
                    final_states += 1;
                }
                let outcome = machine.outcome(visited.get(slot));
                if stop.is_some_and(|matches| matches(&outcome)) {
                    outcomes.insert(outcome.clone());
                    let exploration = Exploration {
                        outcomes,
                        states_visited: visited.len(),
                        final_states,
                        transitions_pruned: pruned,
                        arena: None,
                        memory: None,
                    };
                    return Ok(SeqOutcome::Finished(exploration, Some(outcome)));
                }
                outcomes.insert(outcome);
            } else if succ.is_empty() {
                return Err(ExploreError::Deadlock);
            }

            let chosen = choose_persistent(machine, visited.get(slot), &succ);
            explored.clear();
            #[allow(clippy::needless_range_loop)] // succ[index].1 is swapped out below
            for index in 0..succ.len() {
                let action = succ[index].0;
                if !chosen.keeps(&action) {
                    pruned += 1; // persistent-set prune
                    continue;
                }
                if z.contains(&action) {
                    pruned += 1; // sleep-set prune
                    continue;
                }
                // Steal the successor out of the pooled buffer (its slot is
                // refilled by the next expansion's `clone_from`).
                std::mem::swap(&mut chain_state, &mut succ[index].1);
                if canon {
                    machine.canonicalize_in_place(&mut chain_state);
                }
                // The successor sleeps on every earlier-explored or inherited
                // action it is independent of: those orderings are covered by
                // the sibling subtrees.
                let mut inherited = ActionSet::new();
                for b in z.as_slice().iter().chain(explored.iter()) {
                    if machine.independent(&action, b) {
                        inherited.push(*b);
                    }
                }
                inherited.sort_dedup();

                let mut touched = Touched::from_action(&action);
                if !compress_chain_into(
                    machine,
                    &mut chain_state,
                    &mut inherited,
                    &mut touched,
                    canon,
                    &mut pruned,
                    &mut chain_buf,
                )? {
                    explored.push(action);
                    continue;
                }

                let (next_slot, is_new) = visited.intern_ref(&chain_state);
                if is_new {
                    if visited.len() > self.config.max_states {
                        return Err(ExploreError::StateLimitExceeded {
                            limit: self.config.max_states,
                            states_visited: visited.len(),
                            partial_outcomes: outcomes,
                        });
                    }
                    sleep_sets.push(inherited);
                    expanded_with.push(None);
                    stack.push(next_slot);
                } else {
                    let stored = &sleep_sets[next_slot as usize];
                    if !stored.is_subset(&inherited) {
                        sleep_sets[next_slot as usize] = stored.intersect(&inherited);
                        stack.push(next_slot);
                    }
                }
                explored.push(action);
            }
            if let Some(threshold) = escalate {
                if visited.len() > threshold && !stack.is_empty() {
                    return Ok(SeqOutcome::Escalated(Seed {
                        states: visited.into_states(),
                        pending: stack,
                        outcomes,
                        final_states,
                        pruned,
                        sleep: Some(SleepSeed { sleep_sets, expanded_with }),
                    }));
                }
            }
        }

        let exploration = Exploration {
            outcomes,
            states_visited: visited.len(),
            final_states,
            transitions_pruned: pruned,
            arena: None,
            memory: None,
        };
        Ok(SeqOutcome::Finished(exploration, None))
    }

    /// The reduced sequential driver over the component arena (the
    /// production reduced path — see [`Explorer::seq_plain_reduced`] for
    /// the sleep-set discipline it shares).
    fn seq_composed_reduced<M>(
        &self,
        machine: &M,
        canon: bool,
        stop: Option<StopFn>,
        escalate: Option<usize>,
    ) -> Result<SeqOutcome<M::State>, ExploreError>
    where
        M: LabeledMachine,
        M::State: ComposedState,
    {
        let mut current = {
            let mut state = machine.initial_state();
            if canon {
                machine.canonicalize_in_place(&mut state);
            }
            state
        };
        let num_procs = current.procs().len();
        let resumed = self.try_resume::<M::State>(SNAP_REDUCED, num_procs);
        let (mut arena, mut stack, mut outcomes, mut final_states, mut pruned, mut expansions);
        let (mut sleep_sets, mut expanded_with): (Vec<ActionSet>, Vec<Option<ActionSet>>);
        match resumed {
            Some(snap) => {
                arena = snap.arena;
                stack = snap.stack;
                outcomes = snap.outcomes;
                final_states = snap.final_states;
                pruned = snap.pruned;
                expansions = snap.expansions;
                let sleep = snap.sleep.expect("reduced snapshot carries sleep bookkeeping");
                sleep_sets = sleep.0;
                expanded_with = sleep.1;
            }
            None => {
                arena = ComponentArena::new(num_procs);
                let root = arena.intern_root(&current);
                stack = vec![root];
                outcomes = BTreeSet::new();
                final_states = 0;
                pruned = 0;
                expansions = 0;
                sleep_sets = vec![ActionSet::new()];
                expanded_with = vec![None];
            }
        }
        self.arm_spill(&mut arena, num_procs);
        let mut governor = MemGovernor::new(&self.memory);
        let plan = self.memory.checkpoint.clone();
        let hard_budget = self.memory.max_bytes.unwrap_or(0);
        let mut succ: Vec<(Action, M::State)> = Vec::new();
        let mut chain_buf: Vec<(Action, M::State)> = Vec::new();
        let mut explored: Vec<Action> = Vec::new();
        let mut chain_state = current.clone();

        let interrupt_armed = self.interrupt.is_armed();
        let progress = ProgressTicker::new();
        loop {
            if expansions & INTERRUPT_POLL_MASK == 0 {
                if interrupt_armed {
                    if let Some(reason) = self.interrupt.triggered() {
                        return Err(ExploreError::Interrupted {
                            reason,
                            states_visited: arena.len(),
                            partial_outcomes: outcomes,
                        });
                    }
                }
                if let Some(gov) = governor.as_mut() {
                    if let Err(reason) = gov.govern(
                        &mut arena,
                        stack.len(),
                        Some((&mut sleep_sets, &mut expanded_with)),
                    ) {
                        return Err(ExploreError::Interrupted {
                            reason,
                            states_visited: arena.len(),
                            partial_outcomes: outcomes,
                        });
                    }
                }
            }
            if let Some(plan) = &plan {
                if plan.every_expansions != 0
                    && expansions != 0
                    && expansions % plan.every_expansions == 0
                {
                    let bytes = encode_snapshot(
                        SNAP_REDUCED,
                        expansions,
                        final_states,
                        pruned,
                        &outcomes,
                        &arena,
                        &stack,
                        Some((sleep_sets.as_slice(), expanded_with.as_slice())),
                    );
                    (plan.sink)(&bytes);
                }
            }
            let Some(slot) = stack.pop() else { break };
            progress.tick(expansions, arena.len(), stack.len());
            expansions += 1;
            let z = sleep_sets[slot as usize].clone();
            if let Some(previous) = &expanded_with[slot as usize] {
                if previous.is_subset(&z) {
                    continue;
                }
            }
            let first_expansion = expanded_with[slot as usize].is_none();
            expanded_with[slot as usize] = Some(z.clone());

            arena
                .load(slot, &mut current)
                .map_err(|err| spill_read_interrupt(hard_budget, arena.len(), &outcomes, &err))?;
            machine.labeled_successors_into(&current, &mut succ);
            if machine.is_final(&current) {
                if first_expansion {
                    final_states += 1;
                }
                let outcome = machine.outcome(&current);
                if stop.is_some_and(|matches| matches(&outcome)) {
                    outcomes.insert(outcome.clone());
                    let exploration = Exploration {
                        outcomes,
                        states_visited: arena.len(),
                        final_states,
                        transitions_pruned: pruned,
                        arena: Some(arena.occupancy()),
                        memory: governor.as_ref().map(MemGovernor::stats),
                    };
                    return Ok(SeqOutcome::Finished(exploration, Some(outcome)));
                }
                outcomes.insert(outcome);
            } else if succ.is_empty() {
                return Err(ExploreError::Deadlock);
            }

            let chosen = choose_persistent(machine, &current, &succ);
            explored.clear();
            #[allow(clippy::needless_range_loop)] // succ[index].1 is swapped out below
            for index in 0..succ.len() {
                let action = succ[index].0;
                if !chosen.keeps(&action) {
                    pruned += 1; // persistent-set prune
                    continue;
                }
                if z.contains(&action) {
                    pruned += 1; // sleep-set prune
                    continue;
                }
                std::mem::swap(&mut chain_state, &mut succ[index].1);
                if canon {
                    machine.canonicalize_in_place(&mut chain_state);
                }
                let mut inherited = ActionSet::new();
                for b in z.as_slice().iter().chain(explored.iter()) {
                    if machine.independent(&action, b) {
                        inherited.push(*b);
                    }
                }
                inherited.sort_dedup();

                // The mask starts at the expanding action and widens with
                // every compressed chain step, so the intern below touches
                // exactly the components some fired rule could have changed.
                let mut touched = Touched::from_action(&action);
                if !compress_chain_into(
                    machine,
                    &mut chain_state,
                    &mut inherited,
                    &mut touched,
                    canon,
                    &mut pruned,
                    &mut chain_buf,
                )? {
                    explored.push(action);
                    continue;
                }

                let (next_slot, is_new) =
                    arena.intern_touched(&chain_state, slot, touched).map_err(|err| {
                        spill_read_interrupt(hard_budget, arena.len(), &outcomes, &err)
                    })?;
                if is_new {
                    if arena.len() > self.config.max_states {
                        return Err(ExploreError::StateLimitExceeded {
                            limit: self.config.max_states,
                            states_visited: arena.len(),
                            partial_outcomes: outcomes,
                        });
                    }
                    sleep_sets.push(inherited);
                    expanded_with.push(None);
                    stack.push(next_slot);
                } else {
                    let stored = &sleep_sets[next_slot as usize];
                    if !stored.is_subset(&inherited) {
                        sleep_sets[next_slot as usize] = stored.intersect(&inherited);
                        stack.push(next_slot);
                    }
                }
                explored.push(action);
            }
            if let Some(threshold) = escalate {
                if arena.len() > threshold && !stack.is_empty() {
                    return Ok(SeqOutcome::Escalated(Seed {
                        states: arena.export_states(&current),
                        pending: stack,
                        outcomes,
                        final_states,
                        pruned,
                        sleep: Some(SleepSeed { sleep_sets, expanded_with }),
                    }));
                }
            }
        }

        let exploration = Exploration {
            outcomes,
            states_visited: arena.len(),
            final_states,
            transitions_pruned: pruned,
            arena: Some(arena.occupancy()),
            memory: governor.as_ref().map(MemGovernor::stats),
        };
        Ok(SeqOutcome::Finished(exploration, None))
    }

    /// Sharded-frontier parallel exploration, continuing from `seed`.
    ///
    /// Dedup stays lock-local (each shard owns the states whose hash lands
    /// in it); cross-shard successor handoffs are *batched*: a worker
    /// expands up to [`HANDOFF_BATCH`] frontier items, collects every
    /// successor into per-destination outboxes, and flushes each outbox
    /// with a single lock acquisition — one lock per destination shard per
    /// round instead of one per successor. Idle workers spin-yield rather
    /// than parking: explorations that reach this driver at all are past
    /// the adaptive threshold, and a condvar handshake per frontier item
    /// would cost more than the spin.
    fn parallel_seeded<M: AbstractMachine + Sync>(
        &self,
        machine: &M,
        stop: Option<StopFn>,
        seed: Seed<M::State>,
    ) -> Result<(Exploration, Option<Outcome>), ExploreError>
    where
        M::State: Send,
    {
        let workers = self.config.parallelism;
        let shards: Vec<Mutex<InternedStates<M::State>>> =
            (0..workers).map(|_| Mutex::new(InternedStates::default())).collect();
        let shard_of = |hash: u64| (hash % workers as u64) as usize;
        let seeding_hasher = FxBuildHasher::default();

        // Migrate the sequential phase's visited set into the shards,
        // remembering each slot's new (shard, index) address so the pending
        // frontier can be requeued.
        let mut address: Vec<(u32, u32)> = Vec::with_capacity(seed.states.len());
        {
            let mut locked: Vec<_> =
                shards.iter().map(|shard| shard.lock().expect("shard lock")).collect();
            for state in seed.states {
                let hash = seeding_hasher.hash_one(&state);
                let target = shard_of(hash);
                let (index, _) = locked[target].intern_hashed(hash, state);
                address.push((target as u32, index));
            }
        }

        let visited_count = AtomicUsize::new(address.len());
        let final_count = AtomicUsize::new(seed.final_states);
        let witness: Mutex<Option<Outcome>> = Mutex::new(None);
        // Frontier items not yet fully expanded; exploration is complete when
        // this drains to zero (a worker only decrements *after* registering
        // every successor, so the count can never transiently hit zero while
        // work remains).
        let in_flight = AtomicUsize::new(seed.pending.len());
        let abort = AtomicBool::new(false);
        let injector: Mutex<Vec<(u32, u32)>> =
            Mutex::new(seed.pending.iter().map(|&slot| address[slot as usize]).collect());
        let deadlocked = AtomicBool::new(false);
        let interrupt_armed = self.interrupt.is_armed();
        let interrupted: Mutex<Option<StopReason>> = Mutex::new(None);
        let merged: Mutex<BTreeSet<Outcome>> = Mutex::new(seed.outcomes);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let hasher = FxBuildHasher::default();
                    let mut local: Vec<(u32, u32)> = Vec::new();
                    let mut outcomes = BTreeSet::new();
                    let mut batch: Vec<(u32, u32)> = Vec::new();
                    let mut outbox: Vec<Vec<(u64, M::State)>> =
                        (0..workers).map(|_| Vec::new()).collect();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        if interrupt_armed {
                            if let Some(reason) = self.interrupt.triggered() {
                                *interrupted.lock().expect("interrupt lock") = Some(reason);
                                abort.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                        while batch.len() < HANDOFF_BATCH {
                            match local.pop() {
                                Some(item) => batch.push(item),
                                None => break,
                            }
                        }
                        if batch.is_empty() {
                            let mut queue = injector.lock().expect("injector lock");
                            if queue.is_empty() {
                                drop(queue);
                                if in_flight.load(Ordering::SeqCst) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                                continue;
                            }
                            let take = (queue.len() / 2).clamp(1, HANDOFF_BATCH);
                            let from = queue.len().saturating_sub(take);
                            batch.extend(queue.drain(from..));
                        }

                        let expanded = batch.len();
                        for (shard, index) in batch.drain(..) {
                            let state = shards[shard as usize]
                                .lock()
                                .expect("shard lock")
                                .get(index)
                                .clone();
                            let successors = machine.successors(&state);
                            if machine.is_final(&state) {
                                final_count.fetch_add(1, Ordering::Relaxed);
                                let outcome = machine.outcome(&state);
                                if stop.is_some_and(|matches| matches(&outcome)) {
                                    *witness.lock().expect("witness lock") = Some(outcome.clone());
                                    abort.store(true, Ordering::Relaxed);
                                }
                                outcomes.insert(outcome);
                            } else if successors.is_empty() {
                                deadlocked.store(true, Ordering::Relaxed);
                                abort.store(true, Ordering::Relaxed);
                            }
                            for next in successors {
                                let hash = hasher.hash_one(&next);
                                outbox[shard_of(hash)].push((hash, next));
                            }
                        }
                        // Batched handoff: one lock per destination shard.
                        let mut new_work = 0usize;
                        for (target, pending) in outbox.iter_mut().enumerate() {
                            if pending.is_empty() {
                                continue;
                            }
                            let mut shard = shards[target].lock().expect("shard lock");
                            for (hash, state) in pending.drain(..) {
                                if let Some(new_index) = shard.insert_hashed(hash, state) {
                                    if visited_count.fetch_add(1, Ordering::Relaxed) + 1
                                        > self.config.max_states
                                    {
                                        abort.store(true, Ordering::Relaxed);
                                    }
                                    local.push((target as u32, new_index));
                                    new_work += 1;
                                }
                            }
                        }
                        in_flight.fetch_add(new_work, Ordering::SeqCst);
                        in_flight.fetch_sub(expanded, Ordering::SeqCst);
                        // Keep other workers fed: spill half of a large local
                        // stack into the shared injector.
                        if local.len() > 64 {
                            let spill: Vec<_> = local.drain(..local.len() / 2).collect();
                            injector.lock().expect("injector lock").extend(spill);
                        }
                    }
                    merged.lock().expect("outcome lock").append(&mut outcomes);
                });
            }
        });

        let outcomes = merged.into_inner().expect("outcome lock");
        let states_visited = visited_count.load(Ordering::Relaxed);
        let witness = witness.into_inner().expect("witness lock");
        let exploration = Exploration {
            outcomes,
            states_visited,
            final_states: final_count.load(Ordering::Relaxed),
            transitions_pruned: 0,
            arena: None,
            memory: None,
        };
        if let Some(witness) = witness {
            // The early exit aborted the workers on purpose; the partial
            // exploration plus the witness is the answer.
            return Ok((exploration, Some(witness)));
        }
        if deadlocked.load(Ordering::Relaxed) {
            return Err(ExploreError::Deadlock);
        }
        if let Some(reason) = interrupted.into_inner().expect("interrupt lock") {
            return Err(ExploreError::Interrupted {
                reason,
                states_visited,
                partial_outcomes: exploration.outcomes,
            });
        }
        if abort.load(Ordering::Relaxed) {
            return Err(ExploreError::StateLimitExceeded {
                limit: self.config.max_states,
                states_visited,
                partial_outcomes: exploration.outcomes,
            });
        }
        Ok((exploration, None))
    }

    /// The reduced parallel driver: the sharded frontier of
    /// [`Explorer::parallel_seeded`] carrying per-state sleep sets inside
    /// each shard, with the same batched successor handoffs.
    ///
    /// The persistent-set choice is a pure function of the state, so it is
    /// arrival-order independent; sleep sets are not (a state reached first
    /// by a different worker can sleep on a different action set), which
    /// makes `states_visited`/`transitions_pruned` run-dependent under
    /// parallel reduction. The *outcome set* stays exact either way — the
    /// re-expansion-on-smaller-sleep-set discipline guarantees every
    /// obligation is eventually explored — and the repository pins outcome
    /// equality against [`Reduction::Off`] for the full litmus library.
    fn parallel_reduced_seeded<M: LabeledMachine + Sync>(
        &self,
        machine: &M,
        canon: bool,
        stop: Option<StopFn>,
        seed: Seed<M::State>,
    ) -> Result<(Exploration, Option<Outcome>), ExploreError>
    where
        M::State: Send,
    {
        struct Shard<S> {
            states: InternedStates<S>,
            sleep_sets: Vec<ActionSet>,
            expanded_with: Vec<Option<ActionSet>>,
        }
        impl<S> Default for Shard<S> {
            fn default() -> Self {
                Shard {
                    states: InternedStates::default(),
                    sleep_sets: Vec::new(),
                    expanded_with: Vec::new(),
                }
            }
        }

        let workers = self.config.parallelism;
        let shards: Vec<Mutex<Shard<M::State>>> =
            (0..workers).map(|_| Mutex::new(Shard::default())).collect();
        let shard_of = |hash: u64| (hash % workers as u64) as usize;
        let seeding_hasher = FxBuildHasher::default();

        let sleep_seed = seed.sleep.expect("reduced escalation carries sleep bookkeeping");
        let mut address: Vec<(u32, u32)> = Vec::with_capacity(seed.states.len());
        {
            let mut locked: Vec<_> =
                shards.iter().map(|shard| shard.lock().expect("shard lock")).collect();
            for ((state, sleep_set), expanded) in
                seed.states.into_iter().zip(sleep_seed.sleep_sets).zip(sleep_seed.expanded_with)
            {
                let hash = seeding_hasher.hash_one(&state);
                let target = shard_of(hash);
                let shard = &mut locked[target];
                let (index, _) = shard.states.intern_hashed(hash, state);
                shard.sleep_sets.push(sleep_set);
                shard.expanded_with.push(expanded);
                address.push((target as u32, index));
            }
        }

        let visited_count = AtomicUsize::new(address.len());
        let final_count = AtomicUsize::new(seed.final_states);
        let pruned_count = AtomicUsize::new(seed.pruned);
        let witness: Mutex<Option<Outcome>> = Mutex::new(None);
        let in_flight = AtomicUsize::new(seed.pending.len());
        let abort = AtomicBool::new(false);
        let injector: Mutex<Vec<(u32, u32)>> =
            Mutex::new(seed.pending.iter().map(|&slot| address[slot as usize]).collect());
        let deadlocked = AtomicBool::new(false);
        let interrupt_armed = self.interrupt.is_armed();
        let interrupted: Mutex<Option<StopReason>> = Mutex::new(None);
        let merged: Mutex<BTreeSet<Outcome>> = Mutex::new(seed.outcomes);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let hasher = FxBuildHasher::default();
                    let mut local: Vec<(u32, u32)> = Vec::new();
                    let mut outcomes = BTreeSet::new();
                    let mut batch: Vec<(u32, u32)> = Vec::new();
                    let mut outbox: Vec<Vec<(u64, M::State, ActionSet)>> =
                        (0..workers).map(|_| Vec::new()).collect();
                    let mut chain_buf: Vec<(Action, M::State)> = Vec::new();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        if interrupt_armed {
                            if let Some(reason) = self.interrupt.triggered() {
                                *interrupted.lock().expect("interrupt lock") = Some(reason);
                                abort.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                        while batch.len() < HANDOFF_BATCH {
                            match local.pop() {
                                Some(item) => batch.push(item),
                                None => break,
                            }
                        }
                        if batch.is_empty() {
                            let mut queue = injector.lock().expect("injector lock");
                            if queue.is_empty() {
                                drop(queue);
                                if in_flight.load(Ordering::SeqCst) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                                continue;
                            }
                            let take = (queue.len() / 2).clamp(1, HANDOFF_BATCH);
                            let from = queue.len().saturating_sub(take);
                            batch.extend(queue.drain(from..));
                        }

                        let expanded = batch.len();
                        'items: for (shard_index, slot) in batch.drain(..) {
                            // Claim the expansion under the shard lock: read
                            // the current (smallest) sleep set and skip if an
                            // equal or smaller expansion already happened.
                            let claimed = {
                                let mut shard = shards[shard_index as usize].lock().expect("shard");
                                let z = shard.sleep_sets[slot as usize].clone();
                                let skip = shard.expanded_with[slot as usize]
                                    .as_ref()
                                    .is_some_and(|previous| previous.is_subset(&z));
                                if skip {
                                    None
                                } else {
                                    let first = shard.expanded_with[slot as usize].is_none();
                                    shard.expanded_with[slot as usize] = Some(z.clone());
                                    Some((shard.states.get(slot).clone(), z, first))
                                }
                            };
                            let Some((state, z, first_expansion)) = claimed else {
                                continue;
                            };

                            let labeled = machine.labeled_successors(&state);
                            if machine.is_final(&state) {
                                if first_expansion {
                                    final_count.fetch_add(1, Ordering::Relaxed);
                                }
                                let outcome = machine.outcome(&state);
                                if stop.is_some_and(|matches| matches(&outcome)) {
                                    *witness.lock().expect("witness lock") = Some(outcome.clone());
                                    abort.store(true, Ordering::Relaxed);
                                }
                                outcomes.insert(outcome);
                            } else if labeled.is_empty() {
                                deadlocked.store(true, Ordering::Relaxed);
                                abort.store(true, Ordering::Relaxed);
                            }

                            let chosen = choose_persistent(machine, &state, &labeled);
                            let mut explored: Vec<Action> = Vec::new();
                            for (action, successor) in labeled {
                                if !chosen.keeps(&action) {
                                    pruned_count.fetch_add(1, Ordering::Relaxed);
                                    continue;
                                }
                                if z.contains(&action) {
                                    pruned_count.fetch_add(1, Ordering::Relaxed);
                                    continue;
                                }
                                let mut successor = successor;
                                if canon {
                                    machine.canonicalize_in_place(&mut successor);
                                }
                                let mut inherited = ActionSet::new();
                                for b in z.as_slice().iter().chain(explored.iter()) {
                                    if machine.independent(&action, b) {
                                        inherited.push(*b);
                                    }
                                }
                                inherited.sort_dedup();

                                let mut chain_pruned = 0usize;
                                let mut touched = Touched::from_action(&action);
                                let kept = match compress_chain_into(
                                    machine,
                                    &mut successor,
                                    &mut inherited,
                                    &mut touched,
                                    canon,
                                    &mut chain_pruned,
                                    &mut chain_buf,
                                ) {
                                    Ok(kept) => kept,
                                    Err(ExploreError::Deadlock) => {
                                        deadlocked.store(true, Ordering::Relaxed);
                                        abort.store(true, Ordering::Relaxed);
                                        break 'items;
                                    }
                                    Err(_) => unreachable!("chains only fail by deadlock"),
                                };
                                pruned_count.fetch_add(chain_pruned, Ordering::Relaxed);
                                if !kept {
                                    explored.push(action);
                                    continue;
                                }

                                let hash = hasher.hash_one(&successor);
                                outbox[shard_of(hash)].push((hash, successor, inherited));
                                explored.push(action);
                            }
                        }
                        // Batched handoff: one lock per destination shard.
                        let mut new_work = 0usize;
                        for (target, pending) in outbox.iter_mut().enumerate() {
                            if pending.is_empty() {
                                continue;
                            }
                            let mut shard = shards[target].lock().expect("shard lock");
                            for (hash, state, inherited) in pending.drain(..) {
                                let (next_slot, is_new) = shard.states.intern_hashed(hash, state);
                                if is_new {
                                    shard.sleep_sets.push(inherited);
                                    shard.expanded_with.push(None);
                                    if visited_count.fetch_add(1, Ordering::Relaxed) + 1
                                        > self.config.max_states
                                    {
                                        abort.store(true, Ordering::Relaxed);
                                    }
                                    local.push((target as u32, next_slot));
                                    new_work += 1;
                                } else {
                                    let stored = &shard.sleep_sets[next_slot as usize];
                                    if !stored.is_subset(&inherited) {
                                        shard.sleep_sets[next_slot as usize] =
                                            stored.intersect(&inherited);
                                        local.push((target as u32, next_slot));
                                        new_work += 1;
                                    }
                                }
                            }
                        }
                        in_flight.fetch_add(new_work, Ordering::SeqCst);
                        in_flight.fetch_sub(expanded, Ordering::SeqCst);
                        if local.len() > 64 {
                            let spill: Vec<_> = local.drain(..local.len() / 2).collect();
                            injector.lock().expect("injector lock").extend(spill);
                        }
                    }
                    merged.lock().expect("outcome lock").append(&mut outcomes);
                });
            }
        });

        let outcomes = merged.into_inner().expect("outcome lock");
        let states_visited = visited_count.load(Ordering::Relaxed);
        let witness = witness.into_inner().expect("witness lock");
        let exploration = Exploration {
            outcomes,
            states_visited,
            final_states: final_count.load(Ordering::Relaxed),
            transitions_pruned: pruned_count.load(Ordering::Relaxed),
            arena: None,
            memory: None,
        };
        if let Some(witness) = witness {
            return Ok((exploration, Some(witness)));
        }
        if deadlocked.load(Ordering::Relaxed) {
            return Err(ExploreError::Deadlock);
        }
        if let Some(reason) = interrupted.into_inner().expect("interrupt lock") {
            return Err(ExploreError::Interrupted {
                reason,
                states_visited,
                partial_outcomes: exploration.outcomes,
            });
        }
        if abort.load(Ordering::Relaxed) {
            return Err(ExploreError::StateLimitExceeded {
                limit: self.config.max_states,
                states_visited,
                partial_outcomes: exploration.outcomes,
            });
        }
        Ok((exploration, None))
    }
}

/// A hash bucket of arena slots. Almost every hash maps to exactly one
/// slot; keeping that case inline avoids a heap allocation per distinct
/// state (or, in the component arenas, per distinct component).
#[derive(Debug)]
pub(crate) enum Bucket {
    One(u32),
    Many(Vec<u32>),
}

impl Bucket {
    /// The slots in insertion order.
    pub(crate) fn slots(&self) -> &[u32] {
        match self {
            Bucket::One(slot) => std::slice::from_ref(slot),
            Bucket::Many(slots) => slots,
        }
    }

    /// Appends a slot, spilling to the heap on the first collision.
    pub(crate) fn push(&mut self, slot: u32) {
        match self {
            Bucket::One(first) => *self = Bucket::Many(vec![*first, slot]),
            Bucket::Many(slots) => slots.push(slot),
        }
    }
}

/// An interning state set: an arena holding each distinct state once, indexed
/// by a hash → arena-slot map, so frontiers can carry `u32` slots instead of
/// cloned states and membership tests hash each candidate exactly once.
#[derive(Debug)]
pub(crate) struct InternedStates<S> {
    arena: Vec<S>,
    by_hash: FxHashMap<u64, Bucket>,
    hasher: FxBuildHasher,
}

impl<S> Default for InternedStates<S> {
    fn default() -> Self {
        InternedStates {
            arena: Vec::new(),
            by_hash: FxHashMap::default(),
            hasher: FxBuildHasher::default(),
        }
    }
}

impl<S: std::hash::Hash + Eq> InternedStates<S> {
    /// Interns a state, returning its arena slot and whether it was new.
    pub(crate) fn intern(&mut self, state: S) -> (u32, bool) {
        let hash = self.hasher.hash_one(&state);
        self.intern_hashed(hash, state)
    }

    /// Like `intern`, but clones the state into the arena only when it is
    /// new (the component arenas intern by reference, so an already-known
    /// component costs a hash and an equality check, never an allocation).
    pub(crate) fn intern_ref(&mut self, state: &S) -> (u32, bool)
    where
        S: Clone,
    {
        let hash = self.hasher.hash_one(state);
        let slot = u32::try_from(self.arena.len()).expect("state count fits u32");
        match self.by_hash.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                let bucket = entry.get_mut();
                if let Some(&found) =
                    bucket.slots().iter().find(|&&slot| self.arena[slot as usize] == *state)
                {
                    return (found, false);
                }
                bucket.push(slot);
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(Bucket::One(slot));
            }
        }
        self.arena.push(state.clone());
        (slot, true)
    }

    /// Like `intern` with the hash precomputed (parallel shards hash before
    /// picking a shard).
    pub(crate) fn intern_hashed(&mut self, hash: u64, state: S) -> (u32, bool) {
        let slot = u32::try_from(self.arena.len()).expect("state count fits u32");
        match self.by_hash.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                let bucket = entry.get_mut();
                if let Some(&found) =
                    bucket.slots().iter().find(|&&slot| self.arena[slot as usize] == state)
                {
                    return (found, false);
                }
                bucket.push(slot);
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(Bucket::One(slot));
            }
        }
        self.arena.push(state);
        (slot, true)
    }

    /// Inserts a state, returning its fresh arena slot, or `None` if an equal
    /// state was already interned.
    pub(crate) fn insert(&mut self, state: S) -> Option<u32> {
        let hash = self.hasher.hash_one(&state);
        self.insert_hashed(hash, state)
    }

    /// Like `insert` with the hash precomputed.
    pub(crate) fn insert_hashed(&mut self, hash: u64, state: S) -> Option<u32> {
        let (slot, is_new) = self.intern_hashed(hash, state);
        is_new.then_some(slot)
    }

    pub(crate) fn get(&self, slot: u32) -> &S {
        &self.arena[slot as usize]
    }

    pub(crate) fn len(&self) -> usize {
        self.arena.len()
    }

    /// Consumes the set, returning the states in slot order (escalation
    /// hands them to the sharded parallel drivers).
    pub(crate) fn into_states(self) -> Vec<S> {
        self.arena
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::AbstractMachine;
    use gam_isa::litmus::Outcome;

    /// A diamond-shaped machine with two final states.
    #[derive(Debug)]
    struct Diamond;

    impl AbstractMachine for Diamond {
        type State = u8;

        fn initial_state(&self) -> u8 {
            0
        }

        fn successors(&self, state: &u8) -> Vec<u8> {
            match state {
                0 => vec![1, 2],
                1 | 2 => vec![3],
                _ => vec![],
            }
        }

        fn is_final(&self, state: &u8) -> bool {
            *state == 3
        }

        fn outcome(&self, _state: &u8) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "diamond"
        }
    }

    impl LabeledMachine for Diamond {
        fn labeled_successors(&self, state: &u8) -> Vec<(Action, u8)> {
            self.successors(state)
                .into_iter()
                .enumerate()
                .map(|(ordinal, next)| (Action::local(0, ordinal as u32), next))
                .collect()
        }
    }

    /// A machine that deadlocks in a non-final state.
    #[derive(Debug)]
    struct Stuck;

    impl AbstractMachine for Stuck {
        type State = u8;

        fn initial_state(&self) -> u8 {
            0
        }

        fn successors(&self, _state: &u8) -> Vec<u8> {
            vec![]
        }

        fn is_final(&self, _state: &u8) -> bool {
            false
        }

        fn outcome(&self, _state: &u8) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "stuck"
        }
    }

    impl LabeledMachine for Stuck {
        fn labeled_successors(&self, _state: &u8) -> Vec<(Action, u8)> {
            vec![]
        }
    }

    /// A wide two-level tree: `fanout` interior states each fanning into
    /// `fanout` final leaves (value-distinct outcomes are not needed; the
    /// explorer counts distinct *states*).
    #[derive(Debug)]
    struct Wide {
        fanout: u32,
    }

    impl AbstractMachine for Wide {
        type State = u32;

        fn initial_state(&self) -> u32 {
            0
        }

        fn successors(&self, state: &u32) -> Vec<u32> {
            if *state == 0 {
                (1..=self.fanout).collect()
            } else if *state <= self.fanout {
                (1..=self.fanout).map(|leaf| self.fanout * *state + leaf).collect()
            } else {
                vec![]
            }
        }

        fn is_final(&self, state: &u32) -> bool {
            *state > self.fanout
        }

        fn outcome(&self, _state: &u32) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "wide"
        }
    }

    impl LabeledMachine for Wide {
        fn labeled_successors(&self, state: &u32) -> Vec<(Action, u32)> {
            self.successors(state)
                .into_iter()
                .enumerate()
                .map(|(ordinal, next)| (Action::local(0, ordinal as u32), next))
                .collect()
        }
    }

    /// Two threads of fully independent local counters: thread `t` counts
    /// from 0 to `len`. The full space is the `(len+1)^2` grid; a
    /// persistent-set exploration collapses it to one path.
    #[derive(Debug)]
    struct TwoLocalCounters {
        len: u8,
    }

    impl AbstractMachine for TwoLocalCounters {
        type State = (u8, u8);

        fn initial_state(&self) -> (u8, u8) {
            (0, 0)
        }

        fn successors(&self, state: &(u8, u8)) -> Vec<(u8, u8)> {
            self.labeled_successors(state).into_iter().map(|(_, next)| next).collect()
        }

        fn is_final(&self, state: &(u8, u8)) -> bool {
            state.0 == self.len && state.1 == self.len
        }

        fn outcome(&self, _state: &(u8, u8)) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "two-local-counters"
        }
    }

    impl LabeledMachine for TwoLocalCounters {
        fn labeled_successors(&self, state: &(u8, u8)) -> Vec<(Action, (u8, u8))> {
            let mut out = Vec::new();
            if state.0 < self.len {
                out.push((Action::local(0, u32::from(state.0)), (state.0 + 1, state.1)));
            }
            if state.1 < self.len {
                out.push((Action::local(1, u32::from(state.1)), (state.0, state.1 + 1)));
            }
            out
        }
    }

    /// Two threads, each one shared-memory write to a distinct address: a
    /// commuting diamond whose sleep sets prune one of the two transition
    /// orders but still visit all four states.
    #[derive(Debug)]
    struct DisjointWrites;

    impl AbstractMachine for DisjointWrites {
        type State = (bool, bool);

        fn initial_state(&self) -> (bool, bool) {
            (false, false)
        }

        fn successors(&self, state: &(bool, bool)) -> Vec<(bool, bool)> {
            self.labeled_successors(state).into_iter().map(|(_, next)| next).collect()
        }

        fn is_final(&self, state: &(bool, bool)) -> bool {
            state.0 && state.1
        }

        fn outcome(&self, _state: &(bool, bool)) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "disjoint-writes"
        }
    }

    impl LabeledMachine for DisjointWrites {
        fn labeled_successors(&self, state: &(bool, bool)) -> Vec<(Action, (bool, bool))> {
            let mut out = Vec::new();
            if !state.0 {
                out.push((Action::commit(0, 0, 100), (true, state.1)));
            }
            if !state.1 {
                out.push((Action::commit(1, 0, 200), (state.0, true)));
            }
            out
        }
    }

    #[test]
    fn diamond_visits_all_states_once() {
        let exploration = Explorer::default().explore(&Diamond).unwrap();
        assert_eq!(exploration.states_visited, 4);
        assert_eq!(exploration.final_states, 1);
        assert_eq!(exploration.outcomes.len(), 1);
        assert_eq!(exploration.transitions_pruned, 0);
    }

    #[test]
    fn deadlock_is_reported() {
        assert_eq!(Explorer::default().explore(&Stuck), Err(ExploreError::Deadlock));
    }

    #[test]
    fn parallel_deadlock_is_reported() {
        let explorer = Explorer::new(ExplorerConfig { parallelism: 4, ..Default::default() });
        assert_eq!(explorer.explore(&Stuck), Err(ExploreError::Deadlock));
    }

    #[test]
    fn pre_cancelled_exploration_stops_at_the_first_poll() {
        let token = gam_core::CancelToken::new();
        token.cancel();
        let explorer = Explorer::default().with_interrupt(Interrupt::none().with_cancel(token));
        match explorer.explore(&Diamond) {
            Err(ExploreError::Interrupted { reason, states_visited, partial_outcomes }) => {
                assert_eq!(reason, StopReason::Cancelled);
                assert!(partial_outcomes.is_empty(), "nothing explored before the poll");
                assert!(states_visited <= 1);
            }
            other => panic!("expected an interrupted exploration, got {other:?}"),
        }
    }

    #[test]
    fn expired_wall_budget_interrupts_every_driver() {
        for reduction in [Reduction::Off, Reduction::Sleep, Reduction::SleepPlusCanon] {
            let explorer = Explorer::new(ExplorerConfig { reduction, ..Default::default() })
                .with_interrupt(Interrupt::none().with_wall_budget(std::time::Duration::ZERO));
            match explorer.explore(&TwoLocalCounters { len: 16 }) {
                Err(ExploreError::Interrupted { reason, .. }) => {
                    assert!(
                        matches!(reason, StopReason::WallBudget { .. }),
                        "{reduction}: wrong reason {reason:?}"
                    );
                }
                other => panic!("{reduction}: expected interruption, got {other:?}"),
            }
        }
    }

    /// The [`TwoLocalCounters`] grid with *shared-memory commit* labels to
    /// distinct addresses: persistent sets cannot collapse it (no action is
    /// thread-private), so every driver — reduced or not — visits all
    /// `(len+1)^2` states and performs that many expansions.
    #[derive(Debug)]
    struct TwoSharedCounters {
        len: u8,
    }

    impl AbstractMachine for TwoSharedCounters {
        type State = (u8, u8);

        fn initial_state(&self) -> (u8, u8) {
            (0, 0)
        }

        fn successors(&self, state: &(u8, u8)) -> Vec<(u8, u8)> {
            self.labeled_successors(state).into_iter().map(|(_, next)| next).collect()
        }

        fn is_final(&self, state: &(u8, u8)) -> bool {
            state.0 == self.len && state.1 == self.len
        }

        fn outcome(&self, _state: &(u8, u8)) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "two-shared-counters"
        }
    }

    impl LabeledMachine for TwoSharedCounters {
        fn labeled_successors(&self, state: &(u8, u8)) -> Vec<(Action, (u8, u8))> {
            let mut out = Vec::new();
            if state.0 < self.len {
                out.push((Action::commit(0, u32::from(state.0), 100), (state.0 + 1, state.1)));
            }
            if state.1 < self.len {
                out.push((Action::commit(1, u32::from(state.1), 200), (state.0, state.1 + 1)));
            }
            out
        }
    }

    /// Delegates to [`TwoSharedCounters`] but cancels the shared token after
    /// a fixed number of successor expansions, so mid-run cancellation is
    /// reproducible without timing assumptions.
    #[derive(Debug)]
    struct CancelAfter {
        inner: TwoSharedCounters,
        token: gam_core::CancelToken,
        after: usize,
        expansions: AtomicUsize,
    }

    impl CancelAfter {
        fn bump(&self) {
            if self.expansions.fetch_add(1, Ordering::Relaxed) + 1 == self.after {
                self.token.cancel();
            }
        }
    }

    impl AbstractMachine for CancelAfter {
        type State = (u8, u8);

        fn initial_state(&self) -> (u8, u8) {
            self.inner.initial_state()
        }

        fn successors(&self, state: &(u8, u8)) -> Vec<(u8, u8)> {
            self.bump();
            self.inner.successors(state)
        }

        fn is_final(&self, state: &(u8, u8)) -> bool {
            self.inner.is_final(state)
        }

        fn outcome(&self, state: &(u8, u8)) -> Outcome {
            self.inner.outcome(state)
        }

        fn name(&self) -> &str {
            "cancel-after"
        }
    }

    impl LabeledMachine for CancelAfter {
        fn labeled_successors(&self, state: &(u8, u8)) -> Vec<(Action, (u8, u8))> {
            self.bump();
            self.inner.labeled_successors(state)
        }
    }

    #[test]
    fn cancellation_reaches_the_sharded_parallel_drivers() {
        // Threshold 0 escalates to the sharded driver after the first
        // sequential expansion; the cancel fires from inside the machine at
        // expansion 600 — long past the escalation, long before the ~1681
        // expansions the 41x41 grid needs — so only a parallel worker's
        // poll can observe it.
        for reduction in [Reduction::Off, Reduction::SleepPlusCanon] {
            let token = gam_core::CancelToken::new();
            let machine = CancelAfter {
                inner: TwoSharedCounters { len: 40 },
                token: token.clone(),
                after: 600,
                expansions: AtomicUsize::new(0),
            };
            let config = ExplorerConfig {
                parallelism: 2,
                parallel_threshold: 0,
                reduction,
                ..Default::default()
            };
            let explorer =
                Explorer::new(config).with_interrupt(Interrupt::none().with_cancel(token));
            match explorer.explore(&machine) {
                Err(ExploreError::Interrupted { reason: StopReason::Cancelled, .. }) => {}
                other => panic!("{reduction}: expected cancellation, got {other:?}"),
            }
        }
    }

    #[test]
    fn unarmed_interrupt_leaves_results_identical() {
        let baseline = Explorer::default().explore(&TwoLocalCounters { len: 8 }).unwrap();
        let armed = Explorer::default()
            .with_interrupt(Interrupt::none().with_wall_budget(std::time::Duration::from_secs(600)))
            .explore(&TwoLocalCounters { len: 8 })
            .unwrap();
        assert_eq!(baseline, armed);
    }

    /// A diamond whose left interior state deadlocks: with an immediate
    /// escalation the deadlock is discovered by the sharded workers, not by
    /// the sequential phase.
    #[derive(Debug)]
    struct DeepStuck;

    impl AbstractMachine for DeepStuck {
        type State = u8;

        fn initial_state(&self) -> u8 {
            0
        }

        fn successors(&self, state: &u8) -> Vec<u8> {
            match state {
                0 => vec![1, 2],
                1 => vec![3],
                _ => vec![],
            }
        }

        fn is_final(&self, state: &u8) -> bool {
            *state == 3
        }

        fn outcome(&self, _state: &u8) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "deep-stuck"
        }
    }

    impl LabeledMachine for DeepStuck {
        fn labeled_successors(&self, state: &u8) -> Vec<(Action, u8)> {
            self.successors(state)
                .into_iter()
                .enumerate()
                .map(|(ordinal, next)| (Action::local(0, ordinal as u32), next))
                .collect()
        }
    }

    #[test]
    fn deadlock_after_escalation_is_reported() {
        let explorer = Explorer::new(ExplorerConfig {
            parallelism: 4,
            parallel_threshold: 0,
            ..Default::default()
        });
        assert_eq!(explorer.explore(&DeepStuck), Err(ExploreError::Deadlock));
    }

    #[test]
    fn reduced_deadlock_is_reported() {
        for reduction in [Reduction::Sleep, Reduction::SleepPlusCanon] {
            let explorer = Explorer::new(ExplorerConfig { reduction, ..Default::default() });
            assert_eq!(explorer.explore(&Stuck), Err(ExploreError::Deadlock), "{reduction}");
            let parallel =
                Explorer::new(ExplorerConfig { reduction, parallelism: 4, ..Default::default() });
            assert_eq!(parallel.explore(&Stuck), Err(ExploreError::Deadlock), "{reduction}");
        }
    }

    #[test]
    fn state_limit_reports_accurate_statistics() {
        let explorer = Explorer::new(ExplorerConfig { max_states: 2, ..Default::default() });
        match explorer.explore(&Diamond) {
            Err(ExploreError::StateLimitExceeded { limit, states_visited, partial_outcomes }) => {
                assert_eq!(limit, 2);
                // The third insertion trips the limit, so exactly 3 states
                // were interned when the abort happened — not the configured
                // limit, the true count.
                assert_eq!(states_visited, 3);
                // No final state was reached before the abort.
                assert!(partial_outcomes.is_empty());
            }
            other => panic!("expected a state-limit error, got {other:?}"),
        }
        assert_eq!(explorer.config().max_states, 2);
    }

    #[test]
    fn state_limit_keeps_partial_outcomes() {
        // The DFS finishes the first interior node's leaves (all final)
        // before expanding the next interior node trips the limit.
        let explorer = Explorer::new(ExplorerConfig { max_states: 12, ..Default::default() });
        match explorer.explore(&Wide { fanout: 5 }) {
            Err(ExploreError::StateLimitExceeded { states_visited, partial_outcomes, .. }) => {
                assert!(states_visited > 12);
                assert_eq!(partial_outcomes.len(), 1, "the empty outcome was collected");
            }
            other => panic!("expected a state-limit error, got {other:?}"),
        }
    }

    #[test]
    fn state_limit_is_enforced_under_reduction() {
        // The counters machine is all-local, so the persistent set follows
        // thread 0 first: the reduced space is one path of 2·len+1 states.
        // A limit below that still aborts with accurate statistics and the
        // partial outcomes collected so far.
        for reduction in [Reduction::Sleep, Reduction::SleepPlusCanon] {
            let explorer =
                Explorer::new(ExplorerConfig { max_states: 5, reduction, ..Default::default() });
            match explorer.explore(&TwoLocalCounters { len: 9 }) {
                Err(ExploreError::StateLimitExceeded {
                    limit,
                    states_visited,
                    partial_outcomes,
                }) => {
                    assert_eq!(limit, 5, "{reduction}");
                    assert_eq!(states_visited, 6, "{reduction}: abort on the tripping insert");
                    assert!(partial_outcomes.is_empty(), "{reduction}: no final state yet");
                }
                other => panic!("{reduction}: expected a state-limit error, got {other:?}"),
            }
        }
    }

    #[test]
    fn persistent_sets_collapse_independent_local_threads() {
        let machine = TwoLocalCounters { len: 4 };
        let full = Explorer::default().explore(&machine).unwrap();
        assert_eq!(full.states_visited, 25, "the full space is the 5x5 grid");
        let reduced = Explorer::new(ExplorerConfig::reduced()).explore(&machine).unwrap();
        assert_eq!(reduced.outcomes, full.outcomes);
        assert_eq!(
            reduced.states_visited, 9,
            "the persistent set walks thread 0 to completion, then thread 1"
        );
        assert!(reduced.transitions_pruned > 0);
    }

    #[test]
    fn sleep_sets_prune_commuting_diamonds() {
        let machine = DisjointWrites;
        let full = Explorer::default().explore(&machine).unwrap();
        let reduced =
            Explorer::new(ExplorerConfig { reduction: Reduction::Sleep, ..Default::default() })
                .explore(&machine)
                .unwrap();
        assert_eq!(reduced.outcomes, full.outcomes);
        // Sleep sets alone do not remove states (all four corners of the
        // diamond stay reachable), but they skip the second interleaving of
        // the two commuting writes.
        assert_eq!(reduced.states_visited, 4);
        assert_eq!(reduced.transitions_pruned, 1, "one of the two orders is slept");
    }

    #[test]
    fn find_outcome_stops_at_the_first_witness() {
        // Every leaf of the wide tree has the same (empty) outcome, so the
        // early exit must trigger long before the 1 + 40 + 1600 states of
        // the full space are interned.
        let machine = Wide { fanout: 40 };
        for reduction in Reduction::ALL {
            for parallelism in [1, 4] {
                let explorer = Explorer::new(ExplorerConfig {
                    reduction,
                    parallelism,
                    parallel_threshold: 0,
                    ..Default::default()
                });
                let witness = explorer.find_outcome(&machine, |_| true).unwrap();
                assert_eq!(witness, Some(Outcome::new()), "{reduction}/{parallelism}");
                let missing = explorer.find_outcome(&machine, |_| false).unwrap();
                assert_eq!(missing, None, "{reduction}/{parallelism}: exhaustion without a match");
            }
        }
        // The full exploration still reports the whole space.
        let full = Explorer::default().explore(&machine).unwrap();
        assert_eq!(full.states_visited, 1 + 40 + 40 * 40);
    }

    #[test]
    fn parallel_matches_sequential_on_a_wide_tree() {
        let machine = Wide { fanout: 40 };
        let sequential = Explorer::default().explore(&machine).unwrap();
        for workers in [2, 4, 8] {
            let parallel = Explorer::new(ExplorerConfig {
                parallelism: workers,
                parallel_threshold: 0,
                ..Default::default()
            })
            .explore(&machine)
            .unwrap();
            assert_eq!(parallel, sequential, "{workers} workers");
        }
        assert_eq!(sequential.states_visited, 1 + 40 + 40 * 40);
        assert_eq!(sequential.final_states, 40 * 40);
    }

    #[test]
    fn escalation_mid_run_matches_sequential() {
        // A threshold in the middle of the space: the run starts sequential,
        // migrates the visited set into the shards, and finishes parallel.
        let machine = Wide { fanout: 40 };
        let sequential = Explorer::default().explore(&machine).unwrap();
        for threshold in [1, 5, 100, 1_000] {
            let adaptive = Explorer::new(ExplorerConfig {
                parallelism: 4,
                parallel_threshold: threshold,
                ..Default::default()
            })
            .explore(&machine)
            .unwrap();
            assert_eq!(adaptive, sequential, "threshold {threshold}");
        }
    }

    #[test]
    fn small_spaces_never_escalate() {
        // Under the default threshold the whole space fits in the
        // sequential phase, so a parallel explorer produces the sequential
        // result exactly — including per-field equality.
        let machine = Wide { fanout: 10 };
        let sequential = Explorer::default().explore(&machine).unwrap();
        let adaptive = Explorer::new(ExplorerConfig { parallelism: 8, ..Default::default() })
            .explore(&machine)
            .unwrap();
        assert_eq!(adaptive, sequential);
    }

    #[test]
    fn parallel_reduced_matches_sequential_outcomes() {
        let machine = TwoLocalCounters { len: 6 };
        let baseline = Explorer::default().explore(&machine).unwrap();
        for reduction in [Reduction::Sleep, Reduction::SleepPlusCanon] {
            for workers in [2, 4] {
                let reduced = Explorer::new(ExplorerConfig {
                    parallelism: workers,
                    reduction,
                    parallel_threshold: 0,
                    ..Default::default()
                })
                .explore(&machine)
                .unwrap();
                assert_eq!(reduced.outcomes, baseline.outcomes, "{reduction}/{workers}");
                assert_eq!(reduced.final_states, 1, "{reduction}/{workers}");
                assert!(
                    reduced.states_visited <= baseline.states_visited,
                    "{reduction}/{workers}: reduction may only shrink the space"
                );
            }
        }
    }

    #[test]
    fn parallel_state_limit_aborts() {
        let explorer = Explorer::new(ExplorerConfig {
            max_states: 10,
            parallelism: 4,
            parallel_threshold: 0,
            ..Default::default()
        });
        match explorer.explore(&Wide { fanout: 40 }) {
            Err(ExploreError::StateLimitExceeded { limit, states_visited, .. }) => {
                assert_eq!(limit, 10);
                assert!(states_visited > 10);
            }
            other => panic!("expected a state-limit error, got {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        assert!(ExploreError::Deadlock.to_string().contains("no enabled rule"));
        let err = ExploreError::StateLimitExceeded {
            limit: 7,
            states_visited: 9,
            partial_outcomes: BTreeSet::new(),
        };
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains('9'));
    }

    #[test]
    fn reduction_names_and_accessors() {
        assert_eq!(Reduction::Off.to_string(), "off");
        assert_eq!(Reduction::Sleep.to_string(), "sleep");
        assert_eq!(Reduction::SleepPlusCanon.to_string(), "sleep+canon");
        assert!(!Reduction::Off.is_reduced());
        assert!(Reduction::Sleep.is_reduced());
        assert!(!Reduction::Sleep.canonicalizes());
        assert!(Reduction::SleepPlusCanon.canonicalizes());
        assert_eq!(Reduction::default(), Reduction::Off);
        assert_eq!(ExplorerConfig::reduced().reduction, Reduction::SleepPlusCanon);
    }

    #[test]
    fn action_sets_stay_sorted_across_inline_and_heap() {
        let mut set = ActionSet::new();
        assert!(set.as_slice().is_empty());
        // Push past the inline capacity in reverse order.
        let actions: Vec<Action> =
            (0..10).map(|id| Action::local(id as usize % 3, 100 - id)).collect();
        for action in &actions {
            set.push(*action);
        }
        set.sort_dedup();
        assert_eq!(set.as_slice().len(), 10);
        assert!(set.as_slice().windows(2).all(|w| w[0] < w[1]), "sorted and deduplicated");
        for action in &actions {
            assert!(set.contains(action));
        }
        assert!(!set.contains(&Action::local(7, 7)));

        // Duplicates collapse.
        let mut dupes = ActionSet::new();
        for _ in 0..4 {
            dupes.push(Action::local(0, 1));
            dupes.push(Action::local(1, 2));
        }
        dupes.sort_dedup();
        assert_eq!(dupes.as_slice().len(), 2);

        // Subset / intersection across representations.
        assert!(dupes.is_subset(&set) == (dupes.as_slice().iter().all(|a| set.contains(a))));
        let both = set.intersect(&dupes);
        assert_eq!(
            both.as_slice().len(),
            dupes.as_slice().iter().filter(|a| set.contains(a)).count()
        );
        assert_eq!(set.intersect(&set), set);

        // Retain keeps order and works inline and spilled.
        let mut retained = set.clone();
        retained.retain(|a| a.thread == 0);
        assert!(retained.as_slice().iter().all(|a| a.thread == 0));
        assert!(retained.as_slice().windows(2).all(|w| w[0] < w[1]));
        let mut small = dupes.clone();
        small.retain(|a| a.thread == 1);
        assert_eq!(small.as_slice(), &[Action::local(1, 2)]);
    }

    #[test]
    fn interned_states_deduplicate_and_index() {
        let mut set: InternedStates<u64> = InternedStates::default();
        let a = set.insert(10).expect("new");
        assert_eq!(set.insert(10), None);
        let b = set.insert(11).expect("new");
        assert_ne!(a, b);
        assert_eq!(*set.get(a), 10);
        assert_eq!(*set.get(b), 11);
        assert_eq!(set.len(), 2);
        // intern reports the existing slot instead of hiding it.
        assert_eq!(set.intern(10), (a, false));
        assert_eq!(set.intern(12), (2, true));
    }

    /// A state whose `Hash` writes a constant: every instance lands in the
    /// same hash bucket, forcing the collision chain through the arena.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Colliding(u32);

    impl std::hash::Hash for Colliding {
        fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
            state.write_u64(0xDEAD_BEEF);
        }
    }

    #[test]
    fn interned_states_survive_full_hash_collisions() {
        let mut set: InternedStates<Colliding> = InternedStates::default();
        // Distinct states with identical hashes each get their own slot.
        let slots: Vec<u32> =
            (0..64).map(|n| set.insert(Colliding(n)).expect("distinct state is new")).collect();
        assert_eq!(set.len(), 64);
        for (n, slot) in slots.iter().enumerate() {
            assert_eq!(*set.get(*slot), Colliding(n as u32));
        }
        // Equal states are still deduplicated through the collision chain.
        for n in 0..64 {
            assert_eq!(set.insert(Colliding(n)), None);
            assert_eq!(set.intern(Colliding(n)), (slots[n as usize], false));
        }
        assert_eq!(set.len(), 64);
    }

    /// A two-level machine over [`Colliding`] states: all states collide on
    /// one hash bucket, so exploration correctness rests entirely on the
    /// equality-based dedup walk.
    #[derive(Debug)]
    struct CollidingMachine;

    impl AbstractMachine for CollidingMachine {
        type State = Colliding;

        fn initial_state(&self) -> Colliding {
            Colliding(0)
        }

        fn successors(&self, state: &Colliding) -> Vec<Colliding> {
            match state.0 {
                0 => vec![Colliding(1), Colliding(2)],
                1 | 2 => vec![Colliding(3)],
                _ => vec![],
            }
        }

        fn is_final(&self, state: &Colliding) -> bool {
            state.0 == 3
        }

        fn outcome(&self, _state: &Colliding) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "colliding"
        }
    }

    impl LabeledMachine for CollidingMachine {
        fn labeled_successors(&self, state: &Colliding) -> Vec<(Action, Colliding)> {
            self.successors(state)
                .into_iter()
                .enumerate()
                .map(|(ordinal, next)| (Action::local(0, ordinal as u32), next))
                .collect()
        }
    }

    #[test]
    fn exploration_is_exact_under_full_hash_collisions() {
        for reduction in Reduction::ALL {
            for workers in [1, 4] {
                let explorer = Explorer::new(ExplorerConfig {
                    parallelism: workers,
                    reduction,
                    parallel_threshold: 0,
                    ..Default::default()
                });
                let exploration = explorer.explore(&CollidingMachine).unwrap();
                assert_eq!(exploration.states_visited, 4, "{reduction}/{workers}");
                assert_eq!(exploration.final_states, 1, "{reduction}/{workers}");
            }
        }
    }
}
