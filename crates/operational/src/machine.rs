//! The abstract-machine interfaces shared by all operational models.
//!
//! Two layers of machine definition live here:
//!
//! * [`AbstractMachine`] — the original opaque interface: a state type and a
//!   `successors` function. Sufficient for exhaustive search, but the
//!   explorer cannot tell *which* rule produced a successor, so every
//!   interleaving of commuting steps must be visited.
//! * [`LabeledMachine`] — the labeled-transition refinement: every enabled
//!   rule firing is named by an [`Action`] carrying the acting thread, the
//!   step kind and (for memory accesses) the address. The explorer exploits
//!   the labels for partial-order reduction: two actions of different
//!   threads that do not conflict on a memory address commute, so only one
//!   of their orders needs to be explored.

use std::hash::Hash;

use gam_isa::litmus::Outcome;

/// An operational memory-model definition: a non-deterministic transition
/// system whose reachable final states determine the allowed program
/// behaviours.
///
/// Implementations are *machines for one litmus test*: the program, the
/// initial memory and the observed registers/locations are baked into the
/// machine, and [`AbstractMachine::outcome`] projects a final state onto the
/// test's observations.
pub trait AbstractMachine {
    /// A machine configuration. States must be cheap to clone and hashable so
    /// the explorer can memoise visited configurations.
    type State: Clone + Eq + Hash;

    /// The initial configuration.
    fn initial_state(&self) -> Self::State;

    /// All configurations reachable from `state` in one rule firing.
    ///
    /// Returning an empty vector means no rule is enabled; if the state is
    /// not final this indicates deadlock, which the explorer reports.
    fn successors(&self, state: &Self::State) -> Vec<Self::State>;

    /// Returns true when the machine has completely executed the program.
    fn is_final(&self, state: &Self::State) -> bool;

    /// Projects a final state onto the litmus test's observed registers and
    /// memory locations.
    fn outcome(&self, state: &Self::State) -> Outcome;

    /// A short human-readable name for diagnostics.
    fn name(&self) -> &str;
}

/// What a transition does to shared state, as coarse conflict classes.
///
/// The classification drives the independence oracle: two actions of
/// different threads are dependent only if both touch shared memory at the
/// same address and at least one of them writes it. Everything else a rule
/// does must, by contract, be confined to the acting thread's private state
/// (register file, program counter, ROB, its own store buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActionKind {
    /// A thread-private step: register computation, branch resolution,
    /// address/data computation, fetch, store-buffer *enqueue*, or a load
    /// satisfied entirely by forwarding from the thread's own buffered or
    /// in-flight store. Touches no shared memory.
    Local,
    /// A fence completing. Fences in these machines act purely on the acting
    /// thread's private state (their ordering power lives in rule *guards*),
    /// so the kind behaves like [`ActionKind::Local`] for independence; it is
    /// distinguished for diagnostics and persistent-set reporting.
    Fence,
    /// Reads shared memory at [`Action::addr`] (a load that misses every
    /// private forwarding source).
    MemoryRead,
    /// Publishes a value to shared memory at [`Action::addr`] (an
    /// execute-store commit on machines without store buffers).
    MemoryCommit,
    /// Drains one store-buffer entry to shared memory at [`Action::addr`].
    /// Conflict-equivalent to [`ActionKind::MemoryCommit`]; distinguished so
    /// buffer machines report drain pressure separately.
    BufferDrain,
}

impl ActionKind {
    /// Does the action read or write shared memory?
    #[must_use]
    pub fn touches_memory(self) -> bool {
        matches!(self, ActionKind::MemoryRead | ActionKind::MemoryCommit | ActionKind::BufferDrain)
    }

    /// Does the action write shared memory?
    #[must_use]
    pub fn writes_memory(self) -> bool {
        matches!(self, ActionKind::MemoryCommit | ActionKind::BufferDrain)
    }
}

/// A transition label: which thread fired which rule, and what the rule does
/// to shared memory.
///
/// Labels identify transitions *stably*: if an action `a` is enabled in a
/// state and an independent action of another thread fires, `a` remains
/// enabled afterwards with the same label, leading to the same per-thread
/// effect. The explorer's sleep sets rely on this stability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Action {
    /// The acting thread (processor index).
    pub thread: u32,
    /// A machine-chosen identifier distinguishing the thread's concurrently
    /// enabled actions from one another (e.g. ROB index and rule tag).
    pub id: u32,
    /// The conflict class of the step.
    pub kind: ActionKind,
    /// The shared-memory address for memory-touching kinds (0 otherwise).
    pub addr: u64,
}

impl Action {
    /// A thread-private action.
    #[must_use]
    pub fn local(thread: usize, id: u32) -> Self {
        Action { thread: thread as u32, id, kind: ActionKind::Local, addr: 0 }
    }

    /// A fence-completion action.
    #[must_use]
    pub fn fence(thread: usize, id: u32) -> Self {
        Action { thread: thread as u32, id, kind: ActionKind::Fence, addr: 0 }
    }

    /// A shared-memory read at `addr`.
    #[must_use]
    pub fn read(thread: usize, id: u32, addr: u64) -> Self {
        Action { thread: thread as u32, id, kind: ActionKind::MemoryRead, addr }
    }

    /// A shared-memory commit (write) at `addr`.
    #[must_use]
    pub fn commit(thread: usize, id: u32, addr: u64) -> Self {
        Action { thread: thread as u32, id, kind: ActionKind::MemoryCommit, addr }
    }

    /// A store-buffer drain publishing to `addr`.
    #[must_use]
    pub fn drain(thread: usize, id: u32, addr: u64) -> Self {
        Action { thread: thread as u32, id, kind: ActionKind::BufferDrain, addr }
    }

    /// Do the two actions conflict on shared memory — same address, at least
    /// one write?
    #[must_use]
    pub fn conflicts_with(&self, other: &Action) -> bool {
        self.kind.touches_memory()
            && other.kind.touches_memory()
            && self.addr == other.addr
            && (self.kind.writes_memory() || other.kind.writes_memory())
    }
}

/// An over-approximated set of shared-memory addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrSet {
    /// Any address (the analysis could not bound the set).
    Top,
    /// Exactly the listed addresses (possibly empty).
    Set(std::collections::BTreeSet<u64>),
}

impl AddrSet {
    /// The empty set.
    #[must_use]
    pub fn empty() -> Self {
        AddrSet::Set(std::collections::BTreeSet::new())
    }

    /// May the set contain `addr`?
    #[must_use]
    pub fn may_contain(&self, addr: u64) -> bool {
        match self {
            AddrSet::Top => true,
            AddrSet::Set(set) => set.contains(&addr),
        }
    }

    /// Adds one address.
    pub fn insert(&mut self, addr: u64) {
        if let AddrSet::Set(set) = self {
            set.insert(addr);
        }
    }

    /// Unions another set into this one.
    pub fn union_with(&mut self, other: &AddrSet) {
        match (self, other) {
            (this @ AddrSet::Set(_), AddrSet::Top) => *this = AddrSet::Top,
            (AddrSet::Set(this), AddrSet::Set(other)) => this.extend(other.iter().copied()),
            (AddrSet::Top, _) => {}
        }
    }
}

/// An over-approximation of the shared-memory accesses a thread may still
/// perform: the addresses it may read and the addresses it may write, in
/// *any* continuation from the state the footprint was computed in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footprint {
    /// Addresses the thread may still read.
    pub reads: AddrSet,
    /// Addresses the thread may still write.
    pub writes: AddrSet,
}

impl Footprint {
    /// A thread with no remaining shared-memory accesses.
    #[must_use]
    pub fn empty() -> Self {
        Footprint { reads: AddrSet::empty(), writes: AddrSet::empty() }
    }

    /// A thread about which nothing is known (the sound default).
    #[must_use]
    pub fn top() -> Self {
        Footprint { reads: AddrSet::Top, writes: AddrSet::Top }
    }

    /// May the thread still write `addr`?
    #[must_use]
    pub fn may_write(&self, addr: u64) -> bool {
        self.writes.may_contain(addr)
    }

    /// May the thread still read or write `addr`?
    #[must_use]
    pub fn may_access(&self, addr: u64) -> bool {
        self.reads.may_contain(addr) || self.writes.may_contain(addr)
    }
}

/// An [`AbstractMachine`] whose transitions are labeled with [`Action`]s,
/// enabling partial-order reduction in the explorer.
///
/// # Contract
///
/// Implementations must uphold, for the default independence oracle and the
/// reduced exploration modes to be sound:
///
/// 1. **Determinism per label** — [`LabeledMachine::apply`] of an enabled
///    action yields exactly one successor (non-determinism is expressed by
///    *multiple* enabled actions, each with a distinct label).
/// 2. **Thread-local guards and labels** — whether an action is enabled, and
///    its label, may depend only on the acting thread's private state.
///    Shared memory may influence only the *effect* of an action, and any
///    action whose effect reads shared memory must say so via
///    [`ActionKind::MemoryRead`] (and writes via
///    [`ActionKind::MemoryCommit`]/[`ActionKind::BufferDrain`]).
/// 3. **Private effects are private** — an action may mutate nothing outside
///    the acting thread's private state plus the declared shared-memory
///    address.
///
/// Under this contract, two actions of different threads whose labels do not
/// conflict commute: firing them in either order reaches the same state, and
/// neither enables or disables the other. That is exactly what
/// [`LabeledMachine::independent`] reports and what the explorer's
/// persistent/sleep sets exploit.
pub trait LabeledMachine: AbstractMachine {
    /// Every enabled rule firing, as `(label, resulting state)` pairs.
    ///
    /// The projection of the pairs onto states must equal
    /// [`AbstractMachine::successors`] (same multiset, same order) — the
    /// unlabeled interface is kept as the compatibility surface for callers
    /// that do not care about labels.
    ///
    /// Deliberately *not* defaulted in terms of
    /// [`LabeledMachine::labeled_successors_into`]: mutually-recursive
    /// defaults would let an impl overriding neither compile and then
    /// overflow the stack at runtime. Buffer-first machines implement this
    /// as a one-line delegation into a fresh vector.
    fn labeled_successors(&self, state: &Self::State) -> Vec<(Action, Self::State)>;

    /// Every enabled rule firing, written into `out` — the allocation-free
    /// twin of [`LabeledMachine::labeled_successors`].
    ///
    /// **Buffer-reuse contract.** On entry `out` may still hold the entries
    /// of a previous expansion; implementations overwrite those entries in
    /// place (via `Clone::clone_from`, which reuses their heap buffers) and
    /// truncate or extend to the new successor count. Callers therefore
    /// must *not* clear `out` between calls — clearing drops the pooled
    /// states and reintroduces exactly the per-successor allocation churn
    /// this method removes. On return `out` holds the same pairs, in the
    /// same order, as [`LabeledMachine::labeled_successors`].
    ///
    /// The default delegates to [`LabeledMachine::labeled_successors`]
    /// (allocating); the shipped machines implement this method directly
    /// and derive the allocating form from it.
    fn labeled_successors_into(&self, state: &Self::State, out: &mut Vec<(Action, Self::State)>) {
        out.clear();
        out.extend(self.labeled_successors(state));
    }

    /// Like [`LabeledMachine::labeled_successors_into`], but each produced
    /// state is only guaranteed valid in the components its action label
    /// names (the acting thread's private component, plus the shared
    /// memory for writing kinds); everything else may hold stale buffer
    /// content. Exclusively for the unreduced component-arena driver,
    /// which deduplicates successors through exactly that label-derived
    /// mask and never reads the rest. The default produces full states,
    /// which is always sound.
    #[doc(hidden)]
    fn labeled_successors_sparse_into(
        &self,
        state: &Self::State,
        out: &mut Vec<(Action, Self::State)>,
    ) {
        self.labeled_successors_into(state, out);
    }

    /// The labels of every enabled rule firing.
    fn enabled(&self, state: &Self::State) -> Vec<Action> {
        self.labeled_successors(state).into_iter().map(|(action, _)| action).collect()
    }

    /// Fires one enabled action, or returns `None` if `action` is not
    /// enabled in `state`.
    fn apply(&self, state: &Self::State, action: &Action) -> Option<Self::State> {
        self.labeled_successors(state)
            .into_iter()
            .find(|(candidate, _)| candidate == action)
            .map(|(_, next)| next)
    }

    /// The independence oracle: may the two actions be reordered without
    /// changing the reachable behaviours?
    ///
    /// The default derives independence from the labels: actions of the same
    /// thread are always dependent; actions of different threads are
    /// dependent only when they conflict on a shared-memory address
    /// ([`Action::conflicts_with`]).
    fn independent(&self, a: &Action, b: &Action) -> bool {
        a.thread != b.thread && !a.conflicts_with(b)
    }

    /// Is `action` independent of every *other* current and future action of
    /// its own thread — i.e. does it commute with each of them wherever both
    /// are enabled, without disabling any of them?
    ///
    /// When it additionally cannot conflict with any other thread (it is
    /// thread-private, or its address is outside every other active thread's
    /// [`LabeledMachine::future_footprint`]), the explorer may fire it as a
    /// *singleton persistent set*: alone, deferring every sibling action —
    /// the strongest state-pruning step the reduction has. The default
    /// `false` disables singleton selection, which is always sound.
    fn own_thread_independent(&self, _state: &Self::State, _action: &Action) -> bool {
        false
    }

    /// Over-approximates the shared-memory addresses `thread` may still read
    /// or write in *any* continuation from `state`.
    ///
    /// The explorer uses footprints to widen its persistent sets: a thread
    /// whose every enabled action is either thread-private or touches only
    /// addresses outside every other active thread's footprint can be
    /// explored alone — no other thread will ever interfere with it.
    /// Footprints must cover the thread's currently enabled accesses, any
    /// re-execution a squash can trigger, and every dynamically computed
    /// address (a static value-set bound is the usual source). The default
    /// returns [`Footprint::top`], which is always sound and simply disables
    /// the footprint widening.
    fn future_footprint(&self, _state: &Self::State, _thread: usize) -> Footprint {
        Footprint::top()
    }

    /// Rewrites a state into a canonical representative of its symmetry
    /// class: semantically dead fields (e.g. the recorded branch prediction
    /// of an already-resolved ROB entry) are scrubbed so that states whose
    /// futures and observations are identical intern to one arena slot.
    ///
    /// Must be idempotent, preserve [`AbstractMachine::is_final`],
    /// [`AbstractMachine::outcome`] and the labeled successor relation up to
    /// canonicalization. The default is the identity.
    ///
    /// Must compute the same function as
    /// [`LabeledMachine::canonicalize_in_place`] — override both or
    /// neither.
    fn canonicalize(&self, state: Self::State) -> Self::State {
        state
    }

    /// In-place form of [`LabeledMachine::canonicalize`], used by the
    /// explorer's hot paths so canonicalization never moves or reallocates
    /// the state. The default is the identity; machines overriding
    /// `canonicalize` must override this consistently (and vice versa).
    fn canonicalize_in_place(&self, _state: &mut Self::State) {}
}

/// The writing half of the [`LabeledMachine::labeled_successors_into`]
/// buffer-reuse contract, shared by the three machines' rule functions.
///
/// `push_from` hands the rule a successor slot already holding a clone of
/// the parent state: slots left over from the caller's previous expansion
/// are overwritten through `Clone::clone_from` (reusing their memory, ROB,
/// register-file and store-buffer allocations), and only a buffer that has
/// never been this full allocates. `finish` truncates the buffer to the
/// entries actually pushed.
///
/// In *sparse* mode ([`SuccBuf::new_sparse`]) a reused slot clones only
/// the components the [`Action`] label says the rule may touch — the
/// acting thread's component, plus the memory for writing kinds. The
/// resulting states are valid *only* in those components; the unreduced
/// component-arena driver, which deduplicates successors purely through
/// the same label-derived mask, is the one consumer. Rules may therefore
/// read or mutate `next` only inside the acting thread's component and
/// the declared memory — which clause 3 of the [`LabeledMachine`]
/// contract requires of them anyway.
pub(crate) struct SuccBuf<'a, S: crate::arena::ComposedState> {
    out: &'a mut Vec<(Action, S)>,
    filled: usize,
    sparse: bool,
}

impl<'a, S: crate::arena::ComposedState> SuccBuf<'a, S> {
    pub(crate) fn new(out: &'a mut Vec<(Action, S)>) -> Self {
        SuccBuf { out, filled: 0, sparse: false }
    }

    pub(crate) fn new_sparse(out: &'a mut Vec<(Action, S)>) -> Self {
        SuccBuf { out, filled: 0, sparse: true }
    }

    /// Appends a successor initialized to a clone of `parent` under `action`
    /// and returns it for the rule to mutate.
    pub(crate) fn push_from(&mut self, parent: &S, action: Action) -> &mut S {
        if self.filled < self.out.len() {
            let entry = &mut self.out[self.filled];
            entry.0 = action;
            let thread = action.thread as usize;
            if self.sparse && thread < parent.procs().len() {
                if action.kind.writes_memory() {
                    entry.1.memory_mut().clone_from(parent.memory());
                }
                entry.1.procs_mut()[thread].clone_from(&parent.procs()[thread]);
            } else {
                entry.1.clone_from(parent);
            }
        } else {
            // A slot that never existed has no buffers to reuse — a full
            // clone materializes them (also keeps sparse entries shaped
            // like states, so later sparse reuse can index every proc).
            self.out.push((action, parent.clone()));
        }
        self.filled += 1;
        &mut self.out[self.filled - 1].1
    }

    /// Trims the buffer to the pushed entries. Must be called exactly once,
    /// after the last rule ran.
    pub(crate) fn finish(self) {
        self.out.truncate(self.filled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::Outcome;

    /// A trivial two-step machine used to exercise the trait's object safety
    /// and default-free design.
    #[derive(Debug)]
    struct Countdown {
        start: u8,
    }

    impl AbstractMachine for Countdown {
        type State = u8;

        fn initial_state(&self) -> u8 {
            self.start
        }

        fn successors(&self, state: &u8) -> Vec<u8> {
            if *state == 0 {
                vec![]
            } else {
                vec![state - 1]
            }
        }

        fn is_final(&self, state: &u8) -> bool {
            *state == 0
        }

        fn outcome(&self, _state: &u8) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "countdown"
        }
    }

    impl LabeledMachine for Countdown {
        fn labeled_successors(&self, state: &u8) -> Vec<(Action, u8)> {
            self.successors(state).into_iter().map(|next| (Action::local(0, 0), next)).collect()
        }
    }

    #[test]
    fn countdown_machine_behaves() {
        let machine = Countdown { start: 2 };
        let s0 = machine.initial_state();
        assert!(!machine.is_final(&s0));
        let s1 = machine.successors(&s0);
        assert_eq!(s1, vec![1]);
        let s2 = machine.successors(&s1[0]);
        assert!(machine.is_final(&s2[0]));
        assert!(machine.successors(&s2[0]).is_empty());
        assert_eq!(machine.name(), "countdown");
        assert!(machine.outcome(&s2[0]).is_empty());
    }

    #[test]
    fn labeled_defaults_derive_from_labeled_successors() {
        let machine = Countdown { start: 1 };
        assert_eq!(machine.enabled(&1), vec![Action::local(0, 0)]);
        assert_eq!(machine.apply(&1, &Action::local(0, 0)), Some(0));
        assert_eq!(machine.apply(&1, &Action::local(0, 9)), None);
        assert_eq!(machine.apply(&0, &Action::local(0, 0)), None);
        // Default canonicalization is the identity.
        assert_eq!(machine.canonicalize(1), 1);
    }

    #[test]
    fn conflict_oracle_is_address_and_kind_aware() {
        let read_x = Action::read(0, 0, 100);
        let read_x2 = Action::read(1, 0, 100);
        let write_x = Action::commit(1, 0, 100);
        let write_y = Action::commit(1, 0, 200);
        let drain_x = Action::drain(1, 0, 100);
        let local = Action::local(1, 0);
        let fence = Action::fence(1, 0);

        // Reads never conflict with reads.
        assert!(!read_x.conflicts_with(&read_x2));
        // A write conflicts with any same-address access, either direction.
        assert!(read_x.conflicts_with(&write_x));
        assert!(write_x.conflicts_with(&read_x));
        assert!(write_x.conflicts_with(&drain_x));
        assert!(drain_x.conflicts_with(&read_x));
        // Different addresses never conflict.
        assert!(!read_x.conflicts_with(&write_y));
        // Local steps and fences touch no shared memory.
        assert!(!local.conflicts_with(&write_x));
        assert!(!fence.conflicts_with(&write_x));
        assert!(ActionKind::BufferDrain.writes_memory());
        assert!(!ActionKind::MemoryRead.writes_memory());
        assert!(!ActionKind::Fence.touches_memory());
    }

    #[test]
    fn default_independence_is_thread_and_conflict_based() {
        let machine = Countdown { start: 1 };
        // Same thread: always dependent.
        assert!(!machine.independent(&Action::local(0, 0), &Action::local(0, 1)));
        // Different threads, no memory conflict: independent.
        assert!(machine.independent(&Action::local(0, 0), &Action::commit(1, 0, 8)));
        assert!(machine.independent(&Action::read(0, 0, 8), &Action::read(1, 0, 8)));
        // Different threads, same-address read/write: dependent.
        assert!(!machine.independent(&Action::read(0, 0, 8), &Action::commit(1, 0, 8)));
        assert!(!machine.independent(&Action::drain(0, 0, 8), &Action::drain(1, 0, 8)));
    }
}
