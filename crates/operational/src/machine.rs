//! The abstract-machine interface shared by all operational models.

use std::hash::Hash;

use gam_isa::litmus::Outcome;

/// An operational memory-model definition: a non-deterministic transition
/// system whose reachable final states determine the allowed program
/// behaviours.
///
/// Implementations are *machines for one litmus test*: the program, the
/// initial memory and the observed registers/locations are baked into the
/// machine, and [`AbstractMachine::outcome`] projects a final state onto the
/// test's observations.
pub trait AbstractMachine {
    /// A machine configuration. States must be cheap to clone and hashable so
    /// the explorer can memoise visited configurations.
    type State: Clone + Eq + Hash;

    /// The initial configuration.
    fn initial_state(&self) -> Self::State;

    /// All configurations reachable from `state` in one rule firing.
    ///
    /// Returning an empty vector means no rule is enabled; if the state is
    /// not final this indicates deadlock, which the explorer reports.
    fn successors(&self, state: &Self::State) -> Vec<Self::State>;

    /// Returns true when the machine has completely executed the program.
    fn is_final(&self, state: &Self::State) -> bool;

    /// Projects a final state onto the litmus test's observed registers and
    /// memory locations.
    fn outcome(&self, state: &Self::State) -> Outcome;

    /// A short human-readable name for diagnostics.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::Outcome;

    /// A trivial two-step machine used to exercise the trait's object safety
    /// and default-free design.
    #[derive(Debug)]
    struct Countdown {
        start: u8,
    }

    impl AbstractMachine for Countdown {
        type State = u8;

        fn initial_state(&self) -> u8 {
            self.start
        }

        fn successors(&self, state: &u8) -> Vec<u8> {
            if *state == 0 {
                vec![]
            } else {
                vec![state - 1]
            }
        }

        fn is_final(&self, state: &u8) -> bool {
            *state == 0
        }

        fn outcome(&self, _state: &u8) -> Outcome {
            Outcome::new()
        }

        fn name(&self) -> &str {
            "countdown"
        }
    }

    #[test]
    fn countdown_machine_behaves() {
        let machine = Countdown { start: 2 };
        let s0 = machine.initial_state();
        assert!(!machine.is_final(&s0));
        let s1 = machine.successors(&s0);
        assert_eq!(s1, vec![1]);
        let s2 = machine.successors(&s1[0]);
        assert!(machine.is_final(&s2[0]));
        assert!(machine.successors(&s2[0]).is_empty());
        assert_eq!(machine.name(), "countdown");
        assert!(machine.outcome(&s2[0]).is_empty());
    }
}
