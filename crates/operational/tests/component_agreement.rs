//! Component-interned exploration must be observationally identical to the
//! pre-refactor plain-state path.
//!
//! The production drivers store visited states as rows of hash-consed
//! component ids (`ComponentArena`), deduplicate successors through
//! label-derived touched-component masks, and reuse pooled successor
//! buffers. Any bug in that machinery — a stale component id, an action
//! label under-reporting what its rule touches, a sparse successor leaking
//! into a consumer that reads untouched components, a `clone_from` that
//! leaves stale buffer content behind — would make the component-interned
//! exploration diverge from plain full-state interning. This suite pins the
//! two against each other: the full litmus library and randomly generated
//! *branchy* programs (speculation, mispredictions, squash-and-refetch),
//! under every machine model, with and without `Reduction::SleepPlusCanon`.
//!
//! The sequential drivers are deterministic and structurally identical, so
//! the pin is exact: not just outcome sets but `states_visited`,
//! `final_states` and `transitions_pruned` must match the oracle.

use gam_core::ModelKind;
use gam_isa::litmus::{library, LitmusTest};
use gam_isa::prelude::*;
use gam_operational::{ExplorerConfig, OperationalChecker, Reduction};
use proptest::prelude::*;

const MACHINE_MODELS: [ModelKind; 4] =
    [ModelKind::Sc, ModelKind::Tso, ModelKind::Gam, ModelKind::Gam0];

fn checker(kind: ModelKind, reduction: Reduction) -> OperationalChecker {
    OperationalChecker::with_config(kind, ExplorerConfig { reduction, ..ExplorerConfig::default() })
}

fn assert_composed_matches_reference(kind: ModelKind, reduction: Reduction, test: &LitmusTest) {
    let checker = checker(kind, reduction);
    let reference = checker.explore_reference(test).expect("reference exploration succeeds");
    let composed = checker.explore(test).expect("composed exploration succeeds");
    assert_eq!(
        reference.outcomes,
        composed.outcomes,
        "{kind}/{}/{reduction}: outcome sets diverge",
        test.name()
    );
    assert_eq!(
        reference.states_visited,
        composed.states_visited,
        "{kind}/{}/{reduction}: distinct-state counts diverge",
        test.name()
    );
    assert_eq!(
        reference.final_states,
        composed.final_states,
        "{kind}/{}/{reduction}: final-state counts diverge",
        test.name()
    );
    assert_eq!(
        reference.transitions_pruned,
        composed.transitions_pruned,
        "{kind}/{}/{reduction}: prune counts diverge",
        test.name()
    );
    // The oracle stores full states; the production path must report its
    // sharing statistics, and they must be internally consistent.
    assert!(reference.arena.is_none(), "the reference path does no component interning");
    let occupancy = composed.arena.expect("composed explorations report arena occupancy");
    assert_eq!(occupancy.states, composed.states_visited);
    assert!(
        occupancy.distinct_memories <= occupancy.states.max(1),
        "{kind}/{}: more memories than states",
        test.name()
    );
    assert!(occupancy.interned_bytes > 0);
}

#[test]
fn composed_matches_reference_on_the_full_library() {
    for kind in MACHINE_MODELS {
        for reduction in Reduction::ALL {
            for test in library::all_tests() {
                assert_composed_matches_reference(kind, reduction, &test);
            }
        }
    }
}

/// One randomly chosen instruction for the branchy generator.
#[derive(Debug, Clone)]
enum Step {
    Store {
        loc: u8,
        value: u8,
    },
    /// Stores the *address* of a location so register-indirect loads can
    /// chase it (exercises the footprint value-set analysis).
    StoreLoc {
        loc: u8,
        target: u8,
    },
    Load {
        loc: u8,
    },
    /// A load followed by a load through the first load's result — a real
    /// address dependency resolved only dynamically.
    LoadDep {
        loc: u8,
    },
    Fence {
        kind: u8,
    },
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..2, 1u8..3).prop_map(|(loc, value)| Step::Store { loc, value }),
        (0u8..2, 0u8..2).prop_map(|(loc, target)| Step::StoreLoc { loc, target }),
        (0u8..2).prop_map(|loc| Step::Load { loc }),
        (0u8..2).prop_map(|loc| Step::LoadDep { loc }),
        (0u8..4).prop_map(|kind| Step::Fence { kind }),
    ]
}

/// A thread: its straight-line steps, optionally guarded by a leading
/// `load; branch-if-nonzero-to-end` pair — real speculation: the branchy
/// threads fetch non-eagerly, predict both targets and squash on
/// misprediction, which is exactly the machinery the component masks must
/// get right (a squash rewrites a whole proc component).
fn build_test(threads: Vec<(bool, Vec<Step>)>) -> LitmusTest {
    let locations = [Loc::new("px"), Loc::new("py")];
    let fences = [FenceKind::LL, FenceKind::LS, FenceKind::SL, FenceKind::SS];
    let mut programs = Vec::new();
    let mut observed = Vec::new();
    for (proc_index, (branchy, steps)) in threads.iter().enumerate() {
        let proc = ProcId::new(proc_index);
        let mut builder = ThreadProgram::builder(proc);
        let mut next_reg = 1u32;
        if *branchy {
            let guard = Reg::new(next_reg);
            next_reg += 1;
            builder.load(guard, Addr::loc(locations[0]));
            builder.branch(BranchCond::Ne, Operand::reg(guard), Operand::imm(0), "end");
            observed.push((proc, guard));
        }
        for step in steps {
            match step {
                Step::Store { loc, value } => {
                    builder.store(
                        Addr::loc(locations[*loc as usize]),
                        Operand::imm(u64::from(*value)),
                    );
                }
                Step::StoreLoc { loc, target } => {
                    builder.store(
                        Addr::loc(locations[*loc as usize]),
                        Operand::loc(locations[*target as usize]),
                    );
                }
                Step::Load { loc } => {
                    let reg = Reg::new(next_reg);
                    next_reg += 1;
                    builder.load(reg, Addr::loc(locations[*loc as usize]));
                    observed.push((proc, reg));
                }
                Step::LoadDep { loc } => {
                    let pointer = Reg::new(next_reg);
                    let value = Reg::new(next_reg + 1);
                    next_reg += 2;
                    builder.load(pointer, Addr::loc(locations[*loc as usize]));
                    builder.load(value, Addr::reg(pointer));
                    observed.push((proc, pointer));
                    observed.push((proc, value));
                }
                Step::Fence { kind } => {
                    builder.fence(fences[*kind as usize]);
                }
            }
        }
        if *branchy {
            builder.label("end");
        }
        programs.push(builder.build());
    }
    let program = Program::new(programs);
    let mut builder = LitmusTest::builder("component-proptest", program)
        .observe_mem(locations[0])
        .observe_mem(locations[1]);
    for (proc, reg) in observed {
        builder = builder.observe_reg(proc, reg);
    }
    builder.build()
}

fn two_threads_possibly_branchy() -> impl Strategy<Value = LitmusTest> {
    (
        (any::<bool>(), proptest::collection::vec(step(), 1..4)),
        (any::<bool>(), proptest::collection::vec(step(), 1..3)),
    )
        .prop_map(|(a, b)| build_test(vec![a, b]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential property: on random branchy programs the
    /// component-interned exploration matches the plain-state oracle
    /// exactly, for every machine model, with and without
    /// `Reduction::SleepPlusCanon`.
    #[test]
    fn random_branchy_programs_match_the_reference(test in two_threads_possibly_branchy()) {
        for kind in MACHINE_MODELS {
            for reduction in [Reduction::Off, Reduction::SleepPlusCanon] {
                assert_composed_matches_reference(kind, reduction, &test);
            }
        }
    }
}
