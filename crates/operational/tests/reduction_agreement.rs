//! Reduced exploration must be observationally identical to unreduced
//! exploration: for every litmus test in the library, under every model with
//! an abstract machine ({SC, TSO, GAM, GAM0}), in both the sequential and
//! the sharded-parallel drivers, `Reduction::Sleep` and
//! `Reduction::SleepPlusCanon` must produce exactly the outcome set of
//! `Reduction::Off`.
//!
//! This is the correctness pin of the partial-order/symmetry reduction, the
//! same way `parallel_agreement.rs` pins the sharded frontier: a persistent
//! set that is not actually persistent, an unsound independence claim, a
//! sleep set kept across a dependent action, or a canonicalization that
//! merges semantically distinct states would all surface here as a missing
//! or extra outcome. A differential property test over randomly generated
//! dependent-address programs and a branchy hand-built program extend the
//! coverage beyond the library, and the early-exit `check`/`find_witness`
//! paths are asserted verdict-identical to full exploration.

use gam_core::ModelKind;
use gam_isa::litmus::{library, LitmusTest};
use gam_isa::prelude::*;
use gam_operational::{ExplorerConfig, OperationalChecker, Reduction};
use proptest::prelude::*;

const MACHINE_MODELS: [ModelKind; 4] =
    [ModelKind::Sc, ModelKind::Tso, ModelKind::Gam, ModelKind::Gam0];

fn checker(kind: ModelKind, reduction: Reduction, parallelism: usize) -> OperationalChecker {
    // `parallel_threshold: 0` pins the sharded drivers themselves — under
    // the adaptive default, litmus-scale spaces would finish in the
    // sequential phase and the parallel cases here would test nothing new.
    OperationalChecker::with_config(
        kind,
        ExplorerConfig {
            reduction,
            parallelism,
            parallel_threshold: 0,
            ..ExplorerConfig::default()
        },
    )
}

fn assert_reduction_agrees(kind: ModelKind, reduction: Reduction, parallelism: usize) {
    let baseline = OperationalChecker::new(kind);
    let reduced = checker(kind, reduction, parallelism);
    for test in library::all_tests() {
        let full = baseline.explore(&test).expect("unreduced exploration succeeds");
        let fast = reduced.explore(&test).expect("reduced exploration succeeds");
        assert_eq!(
            full.outcomes,
            fast.outcomes,
            "{kind}/{}: outcome sets diverge under {reduction} (parallelism {parallelism})",
            test.name()
        );
        assert!(
            fast.states_visited <= full.states_visited,
            "{kind}/{}: {reduction} visited more states ({} > {})",
            test.name(),
            fast.states_visited,
            full.states_visited
        );
    }
}

#[test]
fn sequential_sleep_agrees_on_the_full_library() {
    for kind in MACHINE_MODELS {
        assert_reduction_agrees(kind, Reduction::Sleep, 1);
    }
}

#[test]
fn sequential_sleep_canon_agrees_on_the_full_library() {
    for kind in MACHINE_MODELS {
        assert_reduction_agrees(kind, Reduction::SleepPlusCanon, 1);
    }
}

#[test]
fn parallel_sleep_agrees_on_the_full_library() {
    for kind in MACHINE_MODELS {
        assert_reduction_agrees(kind, Reduction::Sleep, 4);
    }
}

#[test]
fn parallel_sleep_canon_agrees_on_the_full_library() {
    for kind in MACHINE_MODELS {
        assert_reduction_agrees(kind, Reduction::SleepPlusCanon, 4);
    }
}

/// The acceptance bar of the reduction work: under GAM with
/// `SleepPlusCanon`, at least four library tests must shed half of their
/// states. Pinning the concrete tests keeps a silent regression of the
/// persistent sets or the chain compression from slipping through.
#[test]
fn gam_sleep_canon_halves_at_least_four_library_tests() {
    let baseline = OperationalChecker::new(ModelKind::Gam);
    let reduced = checker(ModelKind::Gam, Reduction::SleepPlusCanon, 1);
    let mut halved = Vec::new();
    for test in library::all_tests() {
        let full = baseline.explore(&test).unwrap();
        let fast = reduced.explore(&test).unwrap();
        if fast.states_visited * 2 <= full.states_visited {
            halved.push(test.name().to_string());
        }
    }
    assert!(halved.len() >= 4, "expected >= 4 GAM tests with a 2x state reduction, got {halved:?}");
    for pinned in ["mp+mem-dep", "wrc", "iriw+fence-ll", "rnsw"] {
        assert!(
            halved.iter().any(|name| name == pinned),
            "{pinned} regressed below 2x: {halved:?}"
        );
    }
}

/// Early-exit `is_allowed`/`find_witness` must answer exactly like the
/// exhaustive outcome-set scan, under every reduction mode.
#[test]
fn early_exit_verdicts_match_full_exploration() {
    for kind in MACHINE_MODELS {
        let baseline = OperationalChecker::new(kind);
        for reduction in Reduction::ALL {
            let fast = checker(kind, reduction, 1);
            for test in library::all_tests() {
                let outcomes = baseline.allowed_outcomes(&test).unwrap();
                let expected = outcomes.iter().any(|o| test.condition().matched_by(o));
                assert_eq!(
                    fast.is_allowed(&test).unwrap(),
                    expected,
                    "{kind}/{}: early-exit verdict diverges under {reduction}",
                    test.name()
                );
                match fast.find_witness(&test).unwrap() {
                    Some(witness) => {
                        assert!(expected, "{kind}/{}: spurious witness", test.name());
                        assert!(
                            test.condition().matched_by(&witness),
                            "{kind}/{}: witness does not match the condition",
                            test.name()
                        );
                        assert!(
                            outcomes.contains(&witness),
                            "{kind}/{}: witness is not a reachable outcome",
                            test.name()
                        );
                    }
                    None => assert!(!expected, "{kind}/{}: witness missed", test.name()),
                }
            }
        }
    }
}

/// A branchy program (speculation, misprediction squashes, canonicalized
/// predictions) explored under every mode: branches exercise the non-eager
/// fetch path and the `SleepPlusCanon` prediction scrubbing.
#[test]
fn branchy_program_agrees_across_modes() {
    let a = Loc::new("a");
    let b = Loc::new("b");
    let mut p1 = ThreadProgram::builder(ProcId::new(0));
    p1.load(Reg::new(1), Addr::loc(a))
        .branch(BranchCond::Ne, Operand::reg(Reg::new(1)), Operand::imm(0), "skip")
        .store(Addr::loc(b), Operand::imm(1))
        .label("skip")
        .load(Reg::new(2), Addr::loc(b));
    let mut p2 = ThreadProgram::builder(ProcId::new(1));
    p2.store(Addr::loc(a), Operand::imm(1));
    let program = Program::new(vec![p1.build(), p2.build()]);
    let test = LitmusTest::builder("branchy-agreement", program)
        .observe_reg(ProcId::new(0), Reg::new(1))
        .observe_reg(ProcId::new(0), Reg::new(2))
        .observe_mem(b)
        .build();
    for kind in MACHINE_MODELS {
        let baseline = OperationalChecker::new(kind).explore(&test).unwrap();
        for reduction in [Reduction::Sleep, Reduction::SleepPlusCanon] {
            for parallelism in [1, 4] {
                let fast = checker(kind, reduction, parallelism).explore(&test).unwrap();
                assert_eq!(
                    baseline.outcomes, fast.outcomes,
                    "{kind}: branchy outcomes diverge under {reduction}/{parallelism}"
                );
            }
        }
    }
}

/// One randomly chosen straight-line instruction acting on two locations
/// (mirrors the generator differential-testing the axiomatic pipelines).
#[derive(Debug, Clone)]
enum Step {
    Store {
        loc: u8,
        value: u8,
    },
    /// Stores the *address* of a location, so register-indirect loads can
    /// chase it (exercises the footprint value-set analysis).
    StoreLoc {
        loc: u8,
        target: u8,
    },
    Load {
        loc: u8,
    },
    /// A load followed by a load through the first load's result — a real
    /// address dependency whose target address is only known dynamically.
    LoadDep {
        loc: u8,
    },
    Fence {
        kind: u8,
    },
}

fn dependent_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..2, 1u8..3).prop_map(|(loc, value)| Step::Store { loc, value }),
        (0u8..2, 0u8..2).prop_map(|(loc, target)| Step::StoreLoc { loc, target }),
        (0u8..2).prop_map(|loc| Step::Load { loc }),
        (0u8..2).prop_map(|loc| Step::LoadDep { loc }),
        (0u8..4).prop_map(|kind| Step::Fence { kind }),
    ]
}

fn build_test(threads: Vec<Vec<Step>>) -> LitmusTest {
    let locations = [Loc::new("px"), Loc::new("py")];
    let fences = [FenceKind::LL, FenceKind::LS, FenceKind::SL, FenceKind::SS];
    let mut programs = Vec::new();
    let mut observed = Vec::new();
    for (proc_index, steps) in threads.iter().enumerate() {
        let proc = ProcId::new(proc_index);
        let mut builder = ThreadProgram::builder(proc);
        let mut next_reg = 1u32;
        for step in steps {
            match step {
                Step::Store { loc, value } => {
                    builder.store(
                        Addr::loc(locations[*loc as usize]),
                        Operand::imm(u64::from(*value)),
                    );
                }
                Step::StoreLoc { loc, target } => {
                    builder.store(
                        Addr::loc(locations[*loc as usize]),
                        Operand::loc(locations[*target as usize]),
                    );
                }
                Step::Load { loc } => {
                    let reg = Reg::new(next_reg);
                    next_reg += 1;
                    builder.load(reg, Addr::loc(locations[*loc as usize]));
                    observed.push((proc, reg));
                }
                Step::LoadDep { loc } => {
                    let pointer = Reg::new(next_reg);
                    let value = Reg::new(next_reg + 1);
                    next_reg += 2;
                    builder.load(pointer, Addr::loc(locations[*loc as usize]));
                    builder.load(value, Addr::reg(pointer));
                    observed.push((proc, pointer));
                    observed.push((proc, value));
                }
                Step::Fence { kind } => {
                    builder.fence(fences[*kind as usize]);
                }
            }
        }
        programs.push(builder.build());
    }
    let program = Program::new(programs);
    let mut builder = LitmusTest::builder("reduction-proptest", program)
        .observe_mem(locations[0])
        .observe_mem(locations[1]);
    for (proc, reg) in observed {
        builder = builder.observe_reg(proc, reg);
    }
    builder.build()
}

fn two_dependent_threads() -> impl Strategy<Value = LitmusTest> {
    (
        proptest::collection::vec(dependent_step(), 1..4),
        proptest::collection::vec(dependent_step(), 1..4),
    )
        .prop_map(|(a, b)| build_test(vec![a, b]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Differential property: on random dependent-address programs the
    /// reduced explorations (sequential and parallel) agree with the
    /// unreduced baseline for every machine model.
    #[test]
    fn random_programs_agree_across_modes(test in two_dependent_threads()) {
        for kind in MACHINE_MODELS {
            let baseline = OperationalChecker::new(kind).explore(&test).unwrap();
            for reduction in [Reduction::Sleep, Reduction::SleepPlusCanon] {
                let fast = checker(kind, reduction, 1).explore(&test).unwrap();
                prop_assert_eq!(
                    &baseline.outcomes, &fast.outcomes,
                    "{}/{}: sequential reduced outcomes diverge", kind, reduction
                );
                prop_assert!(fast.states_visited <= baseline.states_visited);
                let parallel = checker(kind, reduction, 4).explore(&test).unwrap();
                prop_assert_eq!(
                    &baseline.outcomes, &parallel.outcomes,
                    "{}/{}: parallel reduced outcomes diverge", kind, reduction
                );
            }
        }
    }
}
