//! Parallel exploration must be observationally identical to sequential
//! exploration: same outcome sets, same distinct-state counts, same
//! final-state counts — for every litmus test in the library under every
//! model with an abstract machine ({SC, TSO, GAM, GAM0}).
//!
//! This pins the correctness of the sharded frontier: races in deduplication
//! or lost frontier items would change `states_visited` or drop outcomes.

use gam_core::ModelKind;
use gam_isa::litmus::library;
use gam_operational::{ExplorerConfig, OperationalChecker};

fn assert_parallel_matches(kind: ModelKind, parallelism: usize) {
    let sequential = OperationalChecker::new(kind);
    let parallel = OperationalChecker::with_config(
        kind,
        ExplorerConfig { parallelism, ..ExplorerConfig::default() },
    );
    for test in library::all_tests() {
        let s = sequential.explore(&test).expect("sequential exploration succeeds");
        let p = parallel.explore(&test).expect("parallel exploration succeeds");
        assert_eq!(
            s.outcomes,
            p.outcomes,
            "{kind}/{}: outcome sets diverge with {parallelism} workers",
            test.name()
        );
        assert_eq!(
            s.states_visited,
            p.states_visited,
            "{kind}/{}: distinct-state counts diverge",
            test.name()
        );
        assert_eq!(
            s.final_states,
            p.final_states,
            "{kind}/{}: final-state counts diverge",
            test.name()
        );
    }
}

#[test]
fn sc_parallel_matches_sequential_on_the_full_library() {
    assert_parallel_matches(ModelKind::Sc, 4);
}

#[test]
fn tso_parallel_matches_sequential_on_the_full_library() {
    assert_parallel_matches(ModelKind::Tso, 4);
}

#[test]
fn gam_parallel_matches_sequential_on_the_full_library() {
    assert_parallel_matches(ModelKind::Gam, 4);
}

#[test]
fn gam0_parallel_matches_sequential_on_the_full_library() {
    assert_parallel_matches(ModelKind::Gam0, 4);
}

#[test]
fn oversubscribed_parallelism_matches_on_a_sample() {
    // More workers than frontier items at several points: exercises the
    // idle/termination path.
    let parallel = OperationalChecker::with_config(
        ModelKind::Gam,
        ExplorerConfig { parallelism: 16, ..ExplorerConfig::default() },
    );
    let sequential = OperationalChecker::new(ModelKind::Gam);
    for test in [library::dekker(), library::corr(), library::iriw()] {
        assert_eq!(
            sequential.explore(&test).unwrap(),
            parallel.explore(&test).unwrap(),
            "{}",
            test.name()
        );
    }
}
