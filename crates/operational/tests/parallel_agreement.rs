//! Parallel exploration must be observationally identical to sequential
//! exploration: same outcome sets, same distinct-state counts, same
//! final-state counts — for every litmus test in the library under every
//! model with an abstract machine ({SC, TSO, GAM, GAM0}).
//!
//! This pins the correctness of the sharded frontier: races in deduplication
//! or lost frontier items would change `states_visited` or drop outcomes.

use gam_core::ModelKind;
use gam_isa::litmus::library;
use gam_operational::{ExplorerConfig, OperationalChecker};

fn assert_parallel_matches(kind: ModelKind, parallelism: usize) {
    let sequential = OperationalChecker::new(kind);
    // `parallel_threshold: 0` forces the sharded driver from the first
    // expansion — litmus-scale spaces would otherwise (correctly) finish in
    // the adaptive sequential phase and leave the parallel code unexercised.
    let parallel = OperationalChecker::with_config(
        kind,
        ExplorerConfig { parallelism, parallel_threshold: 0, ..ExplorerConfig::default() },
    );
    for test in library::all_tests() {
        let s = sequential.explore(&test).expect("sequential exploration succeeds");
        let p = parallel.explore(&test).expect("parallel exploration succeeds");
        assert_eq!(
            s.outcomes,
            p.outcomes,
            "{kind}/{}: outcome sets diverge with {parallelism} workers",
            test.name()
        );
        assert_eq!(
            s.states_visited,
            p.states_visited,
            "{kind}/{}: distinct-state counts diverge",
            test.name()
        );
        assert_eq!(
            s.final_states,
            p.final_states,
            "{kind}/{}: final-state counts diverge",
            test.name()
        );
    }
}

#[test]
fn sc_parallel_matches_sequential_on_the_full_library() {
    assert_parallel_matches(ModelKind::Sc, 4);
}

#[test]
fn tso_parallel_matches_sequential_on_the_full_library() {
    assert_parallel_matches(ModelKind::Tso, 4);
}

#[test]
fn gam_parallel_matches_sequential_on_the_full_library() {
    assert_parallel_matches(ModelKind::Gam, 4);
}

#[test]
fn gam0_parallel_matches_sequential_on_the_full_library() {
    assert_parallel_matches(ModelKind::Gam0, 4);
}

#[test]
fn oversubscribed_parallelism_matches_on_a_sample() {
    // More workers than frontier items at several points: exercises the
    // idle/termination path.
    let parallel = OperationalChecker::with_config(
        ModelKind::Gam,
        ExplorerConfig { parallelism: 16, parallel_threshold: 0, ..ExplorerConfig::default() },
    );
    let sequential = OperationalChecker::new(ModelKind::Gam);
    for test in [library::dekker(), library::corr(), library::iriw()] {
        let s = sequential.explore(&test).unwrap();
        let p = parallel.explore(&test).unwrap();
        assert_eq!(s.outcomes, p.outcomes, "{}", test.name());
        assert_eq!(s.states_visited, p.states_visited, "{}", test.name());
        assert_eq!(s.final_states, p.final_states, "{}", test.name());
    }
}

#[test]
fn mid_run_escalation_matches_on_the_full_library() {
    // Thresholds inside the litmus state spaces: every exploration starts
    // sequential (component-interned), migrates its visited set into the
    // shards mid-run, and finishes parallel.
    let sequential = OperationalChecker::new(ModelKind::Gam);
    for threshold in [1, 32] {
        let adaptive = OperationalChecker::with_config(
            ModelKind::Gam,
            ExplorerConfig {
                parallelism: 4,
                parallel_threshold: threshold,
                ..ExplorerConfig::default()
            },
        );
        for test in library::all_tests() {
            let s = sequential.explore(&test).unwrap();
            let p = adaptive.explore(&test).unwrap();
            assert_eq!(s.outcomes, p.outcomes, "{}/threshold {threshold}", test.name());
            assert_eq!(s.states_visited, p.states_visited, "{}/{threshold}", test.name());
            assert_eq!(s.final_states, p.final_states, "{}/{threshold}", test.name());
        }
    }
}

#[test]
fn adaptive_default_stays_sequential_on_litmus_scale_spaces() {
    // Under the default threshold the library never escalates: the result
    // is field-for-field the sequential exploration, including the
    // component-arena occupancy statistics.
    let sequential = OperationalChecker::new(ModelKind::Gam);
    let adaptive = OperationalChecker::with_config(
        ModelKind::Gam,
        ExplorerConfig { parallelism: 8, ..ExplorerConfig::default() },
    );
    for test in library::all_tests() {
        let s = sequential.explore(&test).unwrap();
        let p = adaptive.explore(&test).unwrap();
        assert_eq!(s, p, "{}", test.name());
        let occupancy = s.arena.expect("composed sequential explorations report occupancy");
        assert_eq!(occupancy.states, s.states_visited, "{}", test.name());
        assert!(
            occupancy.distinct_components() <= 1 + 2 * s.states_visited,
            "{}: at most one fresh proc + memory pair per state",
            test.name()
        );
    }
}
