//! # gam-frontend
//!
//! The litmus **text frontend** of the GAM reproduction: a parser and
//! pretty-printer for a herd-style `.litmus` format, a corpus loader, and
//! the `gam` CLI binary that fans corpora out across the parallel
//! [`gam_engine::Engine`] facade. It turns the checker stack from a closed
//! library (tests hand-built in Rust) into a tool that accepts arbitrary
//! user-supplied workloads.
//!
//! # The `.litmus` format
//!
//! ```text
//! GAM mp                                   // header: <arch> <test-name>
//! "classical message passing"              // optional quoted description
//! { a = 0; b = 0; }                        // optional initial memory
//! P1       | P2          ;                 // thread columns, `;`-terminated
//! St [a] 1 | r1 = Ld [b] ;
//! St [b] 1 | r2 = Ld [a] ;
//! locations (P2:r1; P2:r2)                 // optional: observed quantities
//! exists (P2:r1 = 1 /\ P2:r2 = 0)          // optional: condition of interest
//! ```
//!
//! Cells hold at most one instruction, optionally preceded by `label:`
//! definitions; the instruction syntax is the ISA's own display form —
//! `rN = Ld [addr]`, `St [addr] data`, `rN = add x, y` (also `sub`, `and`,
//! `or`, `xor`, `mov`), `FenceLL` / `FenceLS` / `FenceSL` / `FenceSS`, and
//! `beq x, y -> label` / `bne x, y -> label`. Addresses are `[base]` or
//! `[base + offset]` with a register, location name or integer base.
//! Processors are 1-based (`P1` is thread 0); `forbidden` is accepted as a
//! synonym of `exists` (the verdict lives in the expectations table, not
//! the file). `//` starts a comment.
//!
//! Symbolic locations are pure hashes of their names
//! ([`gam_isa::Loc::new`]), so the pretty-printer recovers names by
//! *inverting* that hash over a dictionary ([`NameTable`]) and falls back
//! to raw integer addresses — which makes the round-trip guarantee
//! `parse(print(t)) == Ok(t)` hold for every test the workspace can build
//! (the property suite pins it for the whole library plus random
//! programs).
//!
//! # Example
//!
//! ```
//! use gam_frontend::{parse_litmus, print_litmus};
//! use gam_isa::litmus::library;
//!
//! // Round-trip the paper's Dekker test through the text format.
//! let test = library::dekker();
//! let text = print_litmus(&test);
//! assert!(text.starts_with("GAM dekker"));
//! assert_eq!(parse_litmus(&text).unwrap(), test);
//!
//! // Parse a hand-written test; errors carry line/column positions.
//! let err = parse_litmus("GAM broken\nP1 ;\nSt [a) 1 ;\n").unwrap_err();
//! assert_eq!((err.span.line, err.span.col), (3, 6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod canon;
pub mod corpus;
pub mod diag;
mod lexer;
pub mod names;
pub mod parser;
pub mod printer;

pub use canon::{
    canonical_form, canonical_hash, canonical_test, canonical_text, CanonicalForm, CanonicalHash,
};
pub use corpus::{export_library, Corpus, CorpusError, CorpusTest, EXPECTATIONS_FILE};
pub use diag::{ParseError, Span};
pub use names::NameTable;
pub use parser::parse_litmus;
pub use printer::{print_litmus, print_litmus_with};
