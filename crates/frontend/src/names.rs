//! Recovering symbolic location names from concrete addresses.
//!
//! [`gam_isa::Loc`] stores only its concrete address — the symbolic name is
//! hashed away at construction. Because `Loc::new` is a pure function of the
//! name, a name table can *invert* that mapping for any dictionary of
//! candidate names: an address prints as a name exactly when
//! `Loc::new(name).address()` equals it, which is what makes the
//! pretty-printer's round-trip guarantee hold (the parser maps the name back
//! through the same hash). Addresses outside the dictionary render as plain
//! integers, which the parser also accepts as raw locations.

use std::collections::BTreeMap;

use gam_isa::Loc;

/// The built-in candidate names: every single letter plus the multi-letter
/// names conventional in litmus suites.
const DICTIONARY: [&str; 34] = [
    "a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l", "m", "n", "o", "p", "q", "r", "s",
    "t", "u", "v", "w", "x", "y", "z", "flag", "data", "lock", "head", "tail", "buf", "ptr",
    "addr",
];

/// A reverse map from concrete addresses to symbolic location names.
#[derive(Debug, Clone)]
pub struct NameTable {
    by_addr: BTreeMap<u64, String>,
}

impl NameTable {
    /// An empty table (every address renders as a raw integer).
    #[must_use]
    pub fn empty() -> Self {
        NameTable { by_addr: BTreeMap::new() }
    }

    /// Registers a candidate name; the address it inverts is computed via
    /// [`Loc::new`]. The first name registered for an address wins, so
    /// custom names added after construction never change existing output.
    pub fn add(&mut self, name: &str) {
        self.by_addr.entry(Loc::new(name).address()).or_insert_with(|| name.to_string());
    }

    /// The symbolic name of an address, if one is known.
    #[must_use]
    pub fn name_of(&self, address: u64) -> Option<&str> {
        self.by_addr.get(&address).map(String::as_str)
    }
}

impl Default for NameTable {
    /// The built-in dictionary: `a`–`z` and the conventional multi-letter
    /// litmus names (`flag`, `data`, `lock`, …).
    fn default() -> Self {
        let mut table = NameTable::empty();
        for name in DICTIONARY {
            table.add(name);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_inverts_single_letters() {
        let table = NameTable::default();
        for name in ["a", "b", "c", "z", "flag", "data"] {
            assert_eq!(table.name_of(Loc::new(name).address()), Some(name));
        }
    }

    #[test]
    fn unknown_addresses_have_no_name() {
        let table = NameTable::default();
        assert_eq!(table.name_of(0), None);
        assert_eq!(table.name_of(Loc::new("very-unusual-name").address()), None);
    }

    #[test]
    fn first_registration_wins() {
        let mut table = NameTable::empty();
        table.add("a");
        table.add("a");
        assert_eq!(table.name_of(Loc::new("a").address()), Some("a"));
    }

    #[test]
    fn dictionary_is_collision_free() {
        // All 34 candidate names must invert to 34 distinct addresses;
        // a collision would make printing ambiguous.
        let table = NameTable::default();
        assert_eq!(table.by_addr.len(), DICTIONARY.len());
    }
}
