//! `gam` — the litmus text-frontend CLI.
//!
//! ```text
//! usage:
//!   gam check FILE [--models LIST] [--backends LIST] [--parallelism N] [--json]
//!                 [--no-expectations]
//!   gam run DIR   [--models LIST] [--backends LIST] [--parallelism N] [--json]
//!                 [--no-expectations]
//!   gam print FILE
//!   gam export-library DIR
//!
//!   --models LIST     comma-separated: sc,tso,gam,gam0,gam-arm
//!                     (default: sc,tso,gam,gam0 for `run`; all five for `check`)
//!   --backends LIST   comma-separated: axiomatic,operational (default: both;
//!                     model/backend pairs without semantics are skipped)
//!   --parallelism N   suite worker threads (default: all cores)
//!   --json            machine-readable report on stdout
//!   --no-expectations skip expectation diffing (`run`: the corpus
//!                     expectations.txt; `check`: the built-in paper table)
//! ```
//!
//! `check` parses one `.litmus` file, echoes the canonical form and prints
//! every requested verdict; when the file is byte-for-byte a library test
//! (same name *and* same structure) the verdicts are also diffed against
//! the paper's expectation table. `run` loads a whole corpus directory,
//! fans it out across the parallel engine for every `(model, backend)`
//! pair, prints a verdict matrix and diffs the verdicts against the corpus
//! `expectations.txt` (and against each backend pair) — failing also on
//! coverage gaps: corpus tests with no expectations row, or rows naming no
//! corpus test. `print` normalizes a file to canonical text.
//! `export-library` writes the in-code library as a corpus. Exit status:
//! 0 = clean, 1 = any mismatch, disagreement, coverage gap or error,
//! 2 = usage error.

use std::collections::BTreeMap;
use std::process::ExitCode;

use gam_core::ModelKind;
use gam_engine::{Backend, Engine, Json, SuiteReport, ToJson, Verdict};
use gam_frontend::{export_library, parse_litmus, print_litmus, Corpus};
use gam_isa::litmus::LitmusTest;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("gam: {message}");
            ExitCode::from(2)
        }
    }
}

/// Dispatches a subcommand. `Ok(false)` means the command ran but found
/// mismatches/errors (exit 1); `Err` is a usage or I/O problem (exit 2).
fn run(args: &[String]) -> Result<bool, String> {
    let Some(command) = args.first() else {
        return Err(format!("missing subcommand\n\n{USAGE}"));
    };
    match command.as_str() {
        "check" => cmd_check(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "print" => cmd_print(&args[1..]),
        "export-library" => cmd_export(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

const USAGE: &str = "usage:
  gam check FILE [--models LIST] [--backends LIST] [--parallelism N] [--json] [--no-expectations]
  gam run DIR   [--models LIST] [--backends LIST] [--parallelism N] [--json] [--no-expectations]
  gam print FILE
  gam export-library DIR

  --models LIST     comma-separated: sc,tso,gam,gam0,gam-arm
  --backends LIST   comma-separated: axiomatic,operational
  --parallelism N   suite worker threads (default: all cores)
  --json            machine-readable report on stdout
  --no-expectations skip expectation diffing (run: corpus expectations.txt;
                    check: built-in paper table)";

// ---------------------------------------------------------------------------
// argument helpers
// ---------------------------------------------------------------------------

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The first argument that is not a flag or a flag's value.
fn positional(args: &[String]) -> Option<&String> {
    let mut skip = false;
    for arg in args {
        if skip {
            skip = false;
            continue;
        }
        if arg.starts_with("--") {
            skip = matches!(arg.as_str(), "--models" | "--backends" | "--parallelism");
            continue;
        }
        return Some(arg);
    }
    None
}

fn parse_models(list: &str) -> Result<Vec<ModelKind>, String> {
    let mut models = Vec::new();
    for word in list.split(',').filter(|w| !w.is_empty()) {
        let model = match word.to_ascii_lowercase().as_str() {
            "sc" => ModelKind::Sc,
            "tso" => ModelKind::Tso,
            "gam" => ModelKind::Gam,
            "gam0" => ModelKind::Gam0,
            "gam-arm" | "gamarm" | "gam_arm" => ModelKind::GamArm,
            other => return Err(format!("unknown model `{other}` (try sc,tso,gam,gam0,gam-arm)")),
        };
        if !models.contains(&model) {
            models.push(model);
        }
    }
    if models.is_empty() {
        return Err("empty --models list".to_string());
    }
    Ok(models)
}

fn parse_backends(list: &str) -> Result<Vec<Backend>, String> {
    let mut backends = Vec::new();
    for word in list.split(',').filter(|w| !w.is_empty()) {
        let backend = match word.to_ascii_lowercase().as_str() {
            "axiomatic" | "ax" => Backend::Axiomatic,
            "operational" | "op" => Backend::Operational,
            other => return Err(format!("unknown backend `{other}` (try axiomatic,operational)")),
        };
        if !backends.contains(&backend) {
            backends.push(backend);
        }
    }
    if backends.is_empty() {
        return Err("empty --backends list".to_string());
    }
    Ok(backends)
}

fn parallelism(args: &[String]) -> Result<usize, String> {
    match arg_value(args, "--parallelism") {
        None => Ok(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)),
        Some(n) => n.parse::<usize>().map_err(|_| format!("invalid --parallelism `{n}`")),
    }
}

// ---------------------------------------------------------------------------
// suite running shared by `check` and `run`
// ---------------------------------------------------------------------------

/// One verdict discrepancy found while diffing suite results.
struct Mismatch {
    test: String,
    model: ModelKind,
    detail: String,
}

/// Runs `tests` under every supported `(model, backend)` pair and returns
/// the reports keyed by pair. Unsupported pairs (operational GAM-ARM) are
/// skipped.
fn run_matrix(
    tests: &[LitmusTest],
    suite_name: &str,
    models: &[ModelKind],
    backends: &[Backend],
    workers: usize,
) -> Result<BTreeMap<(ModelKind, Backend), SuiteReport>, String> {
    let mut reports = BTreeMap::new();
    for &model in models {
        for &backend in backends {
            if !backend.supports(model) {
                continue;
            }
            let engine = Engine::builder()
                .model(model)
                .backend(backend)
                .parallelism(workers)
                .build()
                .map_err(|err| err.to_string())?;
            reports.insert((model, backend), engine.run_suite_verdicts(tests).named(suite_name));
        }
    }
    if reports.is_empty() {
        return Err("no supported (model, backend) combination selected".to_string());
    }
    Ok(reports)
}

/// Diffs the reports: backends must agree pairwise per `(test, model)`, no
/// backend may error, and (where an expectation exists) the agreed verdict
/// must match it.
fn diff_reports(
    tests: &[LitmusTest],
    models: &[ModelKind],
    reports: &BTreeMap<(ModelKind, Backend), SuiteReport>,
    expectation: impl Fn(&str, ModelKind) -> Option<bool>,
) -> Vec<Mismatch> {
    let mut mismatches = Vec::new();
    for test in tests {
        for &model in models {
            let mut verdicts: Vec<(Backend, Verdict)> = Vec::new();
            for ((m, backend), report) in reports {
                if *m != model {
                    continue;
                }
                let Some(row) = report.report_for(test.name()) else { continue };
                match (row.verdict, &row.error) {
                    (Some(verdict), _) => verdicts.push((*backend, verdict)),
                    (None, error) => mismatches.push(Mismatch {
                        test: test.name().to_string(),
                        model,
                        detail: format!(
                            "{} backend error: {}",
                            backend,
                            error.as_deref().unwrap_or("no verdict")
                        ),
                    }),
                }
            }
            if let Some((first, rest)) = verdicts.split_first() {
                for (backend, verdict) in rest {
                    if verdict != &first.1 {
                        mismatches.push(Mismatch {
                            test: test.name().to_string(),
                            model,
                            detail: format!(
                                "backends disagree: {}={} {}={}",
                                first.0, first.1, backend, verdict
                            ),
                        });
                    }
                }
                if let Some(expected) = expectation(test.name(), model) {
                    let got = first.1.is_allowed();
                    if got != expected {
                        mismatches.push(Mismatch {
                            test: test.name().to_string(),
                            model,
                            detail: format!(
                                "expected {}, every backend says {}",
                                verdict_word(expected),
                                verdict_word(got)
                            ),
                        });
                    }
                }
            }
        }
    }
    mismatches
}

fn verdict_word(allowed: bool) -> &'static str {
    if allowed {
        "allowed"
    } else {
        "forbidden"
    }
}

/// Renders the test × model verdict matrix (letters A/F, `!` on any
/// mismatch involving the cell).
fn render_matrix(
    tests: &[LitmusTest],
    models: &[ModelKind],
    reports: &BTreeMap<(ModelKind, Backend), SuiteReport>,
    mismatches: &[Mismatch],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let name_width = tests.iter().map(|t| t.name().len()).max().unwrap_or(4).max("test".len());
    let _ = write!(out, "{:<name_width$}", "test");
    for model in models {
        let _ = write!(out, "  {:>7}", model.to_string());
    }
    let _ = writeln!(out);
    for test in tests {
        let _ = write!(out, "{:<name_width$}", test.name());
        for &model in models {
            let verdict = reports
                .iter()
                .find(|((m, _), _)| *m == model)
                .and_then(|(_, report)| report.report_for(test.name()))
                .and_then(|row| row.verdict);
            let mut cell = match verdict {
                Some(Verdict::Allowed) => "A".to_string(),
                Some(Verdict::Forbidden) => "F".to_string(),
                None => "-".to_string(),
            };
            if mismatches.iter().any(|m| m.test == test.name() && m.model == model) {
                cell.push('!');
            }
            let _ = write!(out, "  {cell:>7}");
        }
        let _ = writeln!(out);
    }
    out
}

fn json_report(
    suite: &str,
    models: &[ModelKind],
    reports: &BTreeMap<(ModelKind, Backend), SuiteReport>,
    mismatches: &[Mismatch],
    coverage_gaps: &[String],
) -> Json {
    Json::object([
        ("suite", Json::from(suite)),
        ("models", Json::array(models.iter().map(|m| Json::from(m.to_string())))),
        ("reports", Json::array(reports.values().map(ToJson::to_json))),
        (
            "mismatches",
            Json::array(mismatches.iter().map(|m| {
                Json::object([
                    ("test", Json::from(m.test.as_str())),
                    ("model", Json::from(m.model.to_string())),
                    ("detail", Json::from(m.detail.as_str())),
                ])
            })),
        ),
        ("coverage_gaps", Json::array(coverage_gaps.iter().map(|gap| Json::from(gap.as_str())))),
        ("ok", Json::from(mismatches.is_empty() && coverage_gaps.is_empty())),
    ])
}

// ---------------------------------------------------------------------------
// subcommands
// ---------------------------------------------------------------------------

fn cmd_check(args: &[String]) -> Result<bool, String> {
    let Some(path) = positional(args) else {
        return Err("`gam check` needs a FILE argument".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let test = match parse_litmus(&text) {
        Ok(test) => test,
        Err(err) => {
            eprintln!("{path}: {err}");
            return Ok(false);
        }
    };
    let models = match arg_value(args, "--models") {
        Some(list) => parse_models(&list)?,
        None => ModelKind::ALL.to_vec(),
    };
    let backends = match arg_value(args, "--backends") {
        Some(list) => parse_backends(&list)?,
        None => Backend::ALL.to_vec(),
    };
    let workers = parallelism(args)?;
    let use_expectations = !arg_flag(args, "--no-expectations");
    let tests = [test];
    let reports = run_matrix(&tests, path, &models, &backends, workers)?;
    let mismatches = diff_reports(&tests, &models, &reports, |name, model| {
        // The built-in paper table applies only when the parsed test *is*
        // the library test of that name — a user-written variant that merely
        // reuses a library name (e.g. a custom `dekker`) must not be diffed
        // against the paper's verdicts.
        if !use_expectations {
            return None;
        }
        let library_test = gam_isa::litmus::library::by_name(name)?;
        if library_test != tests[0] {
            return None;
        }
        gam_verify::expectations::expectation_for(name).map(|e| e.allowed(model))
    });
    if arg_flag(args, "--json") {
        println!("{}", json_report(path, &models, &reports, &mismatches, &[]));
    } else {
        print!("{}", print_litmus(&tests[0]));
        println!();
        for ((model, backend), report) in &reports {
            let row = report.report_for(tests[0].name()).expect("single-test suite");
            match (&row.verdict, &row.error) {
                (Some(verdict), _) => {
                    println!("{:<8} {:<12} {verdict}", model.to_string(), backend.name());
                }
                (None, error) => println!(
                    "{:<8} {:<12} ERROR: {}",
                    model.to_string(),
                    backend.name(),
                    error.as_deref().unwrap_or("no verdict")
                ),
            }
        }
        for m in &mismatches {
            println!("MISMATCH {} under {}: {}", m.test, m.model, m.detail);
        }
    }
    Ok(mismatches.is_empty())
}

fn cmd_run(args: &[String]) -> Result<bool, String> {
    let Some(dir) = positional(args) else {
        return Err("`gam run` needs a corpus DIR argument".to_string());
    };
    let corpus = match Corpus::load(dir) {
        Ok(corpus) => corpus,
        Err(err) => {
            eprintln!("{err}");
            return Ok(false);
        }
    };
    let models = match arg_value(args, "--models") {
        Some(list) => parse_models(&list)?,
        None => vec![ModelKind::Sc, ModelKind::Tso, ModelKind::Gam, ModelKind::Gam0],
    };
    let backends = match arg_value(args, "--backends") {
        Some(list) => parse_backends(&list)?,
        None => Backend::ALL.to_vec(),
    };
    let workers = parallelism(args)?;
    let use_expectations = !arg_flag(args, "--no-expectations");
    let tests = corpus.tests();
    let name = corpus.name();
    let reports = run_matrix(&tests, &name, &models, &backends, workers)?;
    let mismatches = diff_reports(&tests, &models, &reports, |test, model| {
        if use_expectations {
            corpus.expectation_for(test).map(|row| row.allowed(model))
        } else {
            None
        }
    });
    // A test without an expectations row (or a row naming no test) would
    // silently drop out of verdict enforcement; treat both as failures so
    // the CI gate's contract holds.
    let coverage_gaps =
        if use_expectations { corpus.expectation_coverage_gaps() } else { Vec::new() };
    let clean = mismatches.is_empty() && coverage_gaps.is_empty();
    if arg_flag(args, "--json") {
        println!("{}", json_report(&name, &models, &reports, &mismatches, &coverage_gaps));
    } else {
        let model_names: Vec<String> = models.iter().map(ToString::to_string).collect();
        let backend_names: Vec<String> = backends.iter().map(ToString::to_string).collect();
        let expectations = if use_expectations && !corpus.expectations.is_empty() {
            format!("{} expectation rows", corpus.expectations.len())
        } else {
            "no expectations".to_string()
        };
        println!(
            "corpus {name}: {} tests; models {}; backends {}; {expectations}\n",
            tests.len(),
            model_names.join(", "),
            backend_names.join(", "),
        );
        print!("{}", render_matrix(&tests, &models, &reports, &mismatches));
        println!();
        for m in &mismatches {
            println!("MISMATCH {} under {}: {}", m.test, m.model, m.detail);
        }
        for gap in &coverage_gaps {
            println!("COVERAGE {gap}");
        }
        let pairs = reports.len();
        if clean {
            println!(
                "{} tests x {} (model, backend) pairs: all verdicts agree{}",
                tests.len(),
                pairs,
                if use_expectations && !corpus.expectations.is_empty() {
                    " and match expectations"
                } else {
                    ""
                }
            );
        } else {
            println!(
                "{} tests x {} (model, backend) pairs: {} mismatches, {} coverage gaps",
                tests.len(),
                pairs,
                mismatches.len(),
                coverage_gaps.len()
            );
        }
    }
    Ok(clean)
}

fn cmd_print(args: &[String]) -> Result<bool, String> {
    let Some(path) = positional(args) else {
        return Err("`gam print` needs a FILE argument".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    match parse_litmus(&text) {
        Ok(test) => {
            print!("{}", print_litmus(&test));
            Ok(true)
        }
        Err(err) => {
            eprintln!("{path}: {err}");
            Ok(false)
        }
    }
}

fn cmd_export(args: &[String]) -> Result<bool, String> {
    let Some(dir) = positional(args) else {
        return Err("`gam export-library` needs a DIR argument".to_string());
    };
    let written = export_library(dir).map_err(|err| format!("cannot export to {dir}: {err}"))?;
    println!("wrote {} files under {dir}", written.len());
    Ok(true)
}
