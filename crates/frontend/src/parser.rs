//! The `.litmus` text parser.
//!
//! The format is herd-style: a header naming the test, an optional quoted
//! description, an optional initial-memory block, the per-thread instruction
//! columns, an optional `locations` clause and an optional final-state
//! condition. See the crate docs for the full grammar. Every error carries a
//! 1-based line/column position.
//!
//! ```text
//! GAM mp
//! "classical message passing with no fences"
//! { a = 0; b = 0; }
//! P1       | P2          ;
//! St [a] 1 | r1 = Ld [b] ;
//! St [b] 1 | r2 = Ld [a] ;
//! locations (P2:r1; P2:r2)
//! exists (P2:r1 = 1 /\ P2:r2 = 0)
//! ```

use std::collections::BTreeMap;

use gam_isa::litmus::{LitmusTest, Observation};
use gam_isa::{
    Addr, AluOp, BranchCond, FenceKind, Instruction, IsaError, Loc, Operand, ProcId, Program, Reg,
    ThreadProgram, Value,
};

use crate::diag::{ParseError, Span};
use crate::lexer::{lex, Tok, Token};

/// Reserved words that cannot be used as location or label names.
const KEYWORDS: [&str; 17] = [
    "St",
    "Ld",
    "beq",
    "bne",
    "add",
    "sub",
    "and",
    "or",
    "xor",
    "mov",
    "FenceLL",
    "FenceLS",
    "FenceSL",
    "FenceSS",
    "locations",
    "exists",
    "forbidden",
];

/// Parses one `.litmus` document into a validated [`LitmusTest`].
///
/// # Errors
///
/// Returns a [`ParseError`] with a 1-based line/column position on any
/// lexical, syntactic or semantic problem: malformed instructions, rows with
/// the wrong number of columns, duplicate labels or duplicated initial
/// locations, branches to undefined labels, observations of processors the
/// program does not have, registers that are never written, or observations
/// constrained twice in the condition.
pub fn parse_litmus(text: &str) -> Result<LitmusTest, ParseError> {
    let _phase = gam_obs::phase("parse");
    // ---- line-oriented phase: header and description -----------------------
    let lines: Vec<&str> = text.split('\n').collect();
    let mut line_offsets = Vec::with_capacity(lines.len());
    let mut offset = 0usize;
    for line in &lines {
        line_offsets.push(offset);
        offset += line.len() + 1;
    }
    let is_blank = |line: &str| strip_comment(line).trim().is_empty();

    let mut index = 0usize;
    while index < lines.len() && is_blank(lines[index]) {
        index += 1;
    }
    if index == lines.len() {
        return Err(ParseError::new(Span::new(1, 1), "empty litmus file"));
    }
    let header_line = index + 1;
    let header = strip_comment(lines[index]).trim();
    let (_arch, name) = match header.split_once(char::is_whitespace) {
        Some((arch, rest)) if !rest.trim().is_empty() => (arch, rest.trim().to_string()),
        _ => {
            return Err(ParseError::new(
                Span::new(header_line, 1),
                "header must be `<arch> <test-name>` (e.g. `GAM dekker`)",
            ))
        }
    };
    index += 1;

    while index < lines.len() && is_blank(lines[index]) {
        index += 1;
    }
    let mut description = String::new();
    if index < lines.len() && lines[index].trim_start().starts_with('"') {
        description = parse_description(lines[index], index + 1)?;
        index += 1;
    }

    // ---- token phase: everything below -------------------------------------
    let body = if index < lines.len() { &text[line_offsets[index]..] } else { "" };
    let tokens = lex(body, index + 1)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.document(name, description)
}

/// Cuts a line at the first `//`.
fn strip_comment(line: &str) -> &str {
    line.find("//").map_or(line, |at| &line[..at])
}

/// Parses the quoted description line (raw, because the quotes may contain
/// `//`). Supports `\"` and `\\` escapes; the string must close on the same
/// line, and only whitespace or a comment may follow it.
fn parse_description(line: &str, line_number: usize) -> Result<String, ParseError> {
    let mut out = String::new();
    let mut chars = line.chars().enumerate().peekable();
    let mut col = 0usize;
    // Skip leading whitespace and the opening quote (the caller checked it).
    for (i, c) in chars.by_ref() {
        col = i + 1;
        if c == '"' {
            break;
        }
    }
    loop {
        match chars.next() {
            None => {
                return Err(ParseError::new(
                    Span::new(line_number, col),
                    "unterminated description string",
                ))
            }
            Some((i, '"')) => {
                let rest: String = chars.map(|(_, c)| c).collect();
                let rest = rest.trim_start();
                if !rest.is_empty() && !rest.starts_with("//") {
                    return Err(ParseError::new(
                        Span::new(line_number, i + 2),
                        "unexpected text after the description string",
                    ));
                }
                return Ok(out);
            }
            Some((i, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                _ => {
                    return Err(ParseError::new(
                        Span::new(line_number, i + 1),
                        "unknown escape in description (only \\\" and \\\\ are supported)",
                    ))
                }
            },
            Some((_, c)) => out.push(c),
        }
    }
}

/// How an identifier reads in instruction/observation positions.
enum Word {
    Reg(Reg),
    Proc(ProcId),
    Plain,
}

/// Classifies an identifier as a register (`r` + digits), a processor
/// (`P` + digits, 1-based) or a plain name.
fn classify(name: &str, span: Span) -> Result<Word, ParseError> {
    if let Some(rest) = name.strip_prefix('r') {
        if !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()) {
            let idx = rest.parse::<u32>().map_err(|_| {
                ParseError::new(span, format!("register index in `{name}` is too large"))
            })?;
            return Ok(Word::Reg(Reg::new(idx)));
        }
    }
    if let Some(rest) = name.strip_prefix('P') {
        if !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()) {
            let number = rest.parse::<usize>().map_err(|_| {
                ParseError::new(span, format!("processor number in `{name}` is too large"))
            })?;
            if number == 0 {
                return Err(ParseError::new(span, "processors are numbered from P1"));
            }
            return Ok(Word::Proc(ProcId::new(number - 1)));
        }
    }
    Ok(Word::Plain)
}

/// Checks that `name` can serve as a location or label name.
fn plain_name(name: &str, span: Span, what: &str) -> Result<(), ParseError> {
    if KEYWORDS.contains(&name) {
        return Err(ParseError::new(span, format!("`{name}` is a reserved word, not a {what}")));
    }
    match classify(name, span)? {
        Word::Plain => Ok(()),
        Word::Reg(_) => {
            Err(ParseError::new(span, format!("register `{name}` cannot be used as a {what}")))
        }
        Word::Proc(_) => {
            Err(ParseError::new(span, format!("processor `{name}` cannot be used as a {what}")))
        }
    }
}

/// Everything parsed out of one thread column cell.
#[derive(Default)]
struct Cell {
    labels: Vec<(String, Span)>,
    instr: Option<Instruction>,
    /// Branch target referenced by the instruction, for late resolution.
    branch_target: Option<(String, Span)>,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    /// The token after the next one (saturating at `Eof`).
    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or_else(|| self.tokens.last().expect("eof token"))
    }

    fn advance(&mut self) -> Token {
        let token = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        token
    }

    fn expect(&mut self, tok: &Tok, context: &str) -> Result<Span, ParseError> {
        if &self.peek().tok == tok {
            Ok(self.advance().span)
        } else {
            let found = self.peek();
            Err(ParseError::new(
                found.span,
                format!("expected {} {context}, found {}", tok.describe(), found.tok.describe()),
            ))
        }
    }

    fn ident(&mut self, context: &str) -> Result<(String, Span), ParseError> {
        match self.peek().tok.clone() {
            Tok::Ident(name) => {
                let span = self.advance().span;
                Ok((name, span))
            }
            other => Err(ParseError::new(
                self.peek().span,
                format!("expected {context}, found {}", other.describe()),
            )),
        }
    }

    /// Is the next token the start of the `locations` / condition trailer?
    fn at_trailer(&self) -> bool {
        match &self.peek().tok {
            Tok::Eof => true,
            Tok::Ident(name) => matches!(name.as_str(), "locations" | "exists" | "forbidden"),
            _ => false,
        }
    }

    // ---- document ----------------------------------------------------------

    fn document(&mut self, name: String, description: String) -> Result<LitmusTest, ParseError> {
        let init = if self.peek().tok == Tok::LBrace { self.init_block()? } else { Vec::new() };
        let (threads, branch_refs) = self.thread_columns()?;

        let mut label_maps = Vec::new();
        for thread in &threads {
            label_maps.push(thread.labels().clone());
        }
        for (thread_idx, target, span) in &branch_refs {
            if !label_maps[*thread_idx].contains_key(target.as_str()) {
                return Err(ParseError::new(
                    *span,
                    format!(
                        "branch target `{target}` is not defined in thread P{}",
                        thread_idx + 1
                    ),
                ));
            }
        }
        let num_threads = threads.len();
        let program = Program::try_new(threads)
            .map_err(|err| ParseError::new(Span::new(1, 1), format!("invalid program: {err}")))?;

        let mut observed: Vec<(Observation, Span)> = Vec::new();
        if matches!(&self.peek().tok, Tok::Ident(name) if name == "locations") {
            self.advance();
            self.expect(&Tok::LParen, "after `locations`")?;
            if self.peek().tok != Tok::RParen {
                loop {
                    let (obs, span) = self.observation(num_threads)?;
                    if observed.iter().any(|(seen, _)| *seen == obs) {
                        return Err(ParseError::new(span, "duplicate observation"));
                    }
                    observed.push((obs, span));
                    if self.peek().tok == Tok::Semi {
                        self.advance();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen, "to close the `locations` clause")?;
        }

        let mut condition: Vec<(Observation, Value, Span)> = Vec::new();
        if let Tok::Ident(word) = &self.peek().tok {
            if word == "exists" || word == "forbidden" {
                self.advance();
                self.expect(&Tok::LParen, "after the condition keyword")?;
                if self.peek().tok != Tok::RParen {
                    loop {
                        let (obs, span) = self.observation(num_threads)?;
                        self.expect(&Tok::Eq, "in the condition term")?;
                        let value = self.value()?;
                        if condition.iter().any(|(seen, _, _)| *seen == obs) {
                            return Err(ParseError::new(
                                span,
                                "observation constrained twice in the condition",
                            ));
                        }
                        condition.push((obs, value, span));
                        if self.peek().tok == Tok::And {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen, "to close the condition")?;
            }
        }

        if self.peek().tok != Tok::Eof {
            let found = self.peek();
            return Err(ParseError::new(
                found.span,
                format!("unexpected {} after the end of the test", found.tok.describe()),
            ));
        }

        // ---- assembly and semantic validation ------------------------------
        let mut builder = LitmusTest::builder(name, program).description(description);
        let mut seen_init: BTreeMap<u64, Span> = BTreeMap::new();
        for (addr, value, rendered, span) in init {
            if seen_init.insert(addr, span).is_some() {
                return Err(ParseError::new(
                    span,
                    format!("location `{rendered}` initialised twice"),
                ));
            }
            builder = builder.init(Loc::from_address(addr), value);
        }
        let mut spans: BTreeMap<Observation, Span> = BTreeMap::new();
        for (obs, span) in &observed {
            spans.entry(*obs).or_insert(*span);
            builder = builder.observe(*obs);
        }
        for (obs, value, span) in &condition {
            spans.entry(*obs).or_insert(*span);
            builder = builder.expect(*obs, *value);
        }
        builder.try_build().map_err(|err| match err {
            IsaError::UnwrittenObservedRegister { proc, reg } => {
                let obs = Observation::Register(ProcId::new(proc), Reg::new(reg));
                let span = spans.get(&obs).copied().unwrap_or(Span::new(1, 1));
                ParseError::new(
                    span,
                    format!("observed register r{reg} is never written by thread P{}", proc + 1),
                )
            }
            other => ParseError::new(Span::new(1, 1), format!("invalid litmus test: {other}")),
        })
    }

    // ---- init block --------------------------------------------------------

    /// `{ a = 1; 0x10 = 2; }` — returns `(address, value, written-form, span)`
    /// per entry in file order.
    #[allow(clippy::type_complexity)]
    fn init_block(&mut self) -> Result<Vec<(u64, Value, String, Span)>, ParseError> {
        self.expect(&Tok::LBrace, "to open the initial-state block")?;
        let mut entries = Vec::new();
        while self.peek().tok != Tok::RBrace {
            let (addr, rendered, span) = match self.peek().tok.clone() {
                Tok::Ident(name) => {
                    let span = self.advance().span;
                    plain_name(&name, span, "location name")?;
                    (Loc::new(&name).address(), name, span)
                }
                Tok::Num(addr) => {
                    let span = self.advance().span;
                    (addr, addr.to_string(), span)
                }
                other => {
                    return Err(ParseError::new(
                        self.peek().span,
                        format!(
                            "expected a location or `}}` in the initial-state block, found {}",
                            other.describe()
                        ),
                    ))
                }
            };
            self.expect(&Tok::Eq, "in the initial-state entry")?;
            let value = self.value()?;
            self.expect(&Tok::Semi, "after the initial-state entry")?;
            entries.push((addr, value, rendered, span));
        }
        self.advance(); // the `}`
        Ok(entries)
    }

    // ---- thread columns ----------------------------------------------------

    /// Parses the `P1 | P2 ;` header row and every instruction row, returning
    /// the built threads plus every branch reference for late resolution.
    #[allow(clippy::type_complexity)]
    fn thread_columns(
        &mut self,
    ) -> Result<(Vec<ThreadProgram>, Vec<(usize, String, Span)>), ParseError> {
        // Header row.
        let mut num_threads = 0usize;
        loop {
            let (word, span) = self.ident("a thread column header (`P1`, `P2`, …)")?;
            match classify(&word, span)? {
                Word::Proc(proc) if proc.index() == num_threads => num_threads += 1,
                _ => {
                    return Err(ParseError::new(
                        span,
                        format!(
                            "thread columns must be named P1, P2, … in order (found `{word}`, \
                             expected `P{}`)",
                            num_threads + 1
                        ),
                    ))
                }
            }
            match self.peek().tok {
                Tok::Pipe => {
                    self.advance();
                }
                Tok::Semi => {
                    self.advance();
                    break;
                }
                _ => {
                    let found = self.peek();
                    return Err(ParseError::new(
                        found.span,
                        format!(
                            "expected `|` or `;` in the thread header row, found {}",
                            found.tok.describe()
                        ),
                    ));
                }
            }
        }

        let mut builders: Vec<_> =
            (0..num_threads).map(|i| ThreadProgram::builder(ProcId::new(i))).collect();
        let mut label_spans: Vec<BTreeMap<String, Span>> =
            (0..num_threads).map(|_| BTreeMap::new()).collect();
        let mut branch_refs: Vec<(usize, String, Span)> = Vec::new();

        // Instruction rows, until the trailer or end of input.
        while !self.at_trailer() {
            for column in 0..num_threads {
                let cell = self.cell()?;
                for (label, span) in cell.labels {
                    if label_spans[column].insert(label.clone(), span).is_some() {
                        return Err(ParseError::new(
                            span,
                            format!(
                                "label `{label}` defined more than once in thread P{}",
                                column + 1
                            ),
                        ));
                    }
                    builders[column].label(label);
                }
                if let Some(instr) = cell.instr {
                    if let Some((target, span)) = cell.branch_target {
                        branch_refs.push((column, target, span));
                    }
                    builders[column].push(instr);
                }
                let last = column == num_threads - 1;
                match (&self.peek().tok, last) {
                    (Tok::Pipe, false) => {
                        self.advance();
                    }
                    (Tok::Semi, true) => {
                        self.advance();
                    }
                    (Tok::Semi, false) => {
                        return Err(ParseError::new(
                            self.peek().span,
                            format!(
                                "row ends after {} of {num_threads} thread columns",
                                column + 1
                            ),
                        ));
                    }
                    _ => {
                        let found = self.peek();
                        let wanted = if last { "`;` at the end of the row" } else { "`|`" };
                        return Err(ParseError::new(
                            found.span,
                            format!("expected {wanted}, found {}", found.tok.describe()),
                        ));
                    }
                }
            }
        }
        Ok((builders.iter_mut().map(gam_isa::ThreadBuilder::build).collect(), branch_refs))
    }

    /// One cell of an instruction row: zero or more `label:` definitions
    /// followed by at most one instruction.
    fn cell(&mut self) -> Result<Cell, ParseError> {
        let mut cell = Cell::default();
        // Labels: an identifier directly followed by `:`.
        while matches!(self.peek().tok, Tok::Ident(_)) && self.peek2().tok == Tok::Colon {
            let (label, span) = self.ident("a label")?;
            plain_name(&label, span, "label name")?;
            self.advance(); // the `:`
            cell.labels.push((label, span));
        }
        if matches!(self.peek().tok, Tok::Pipe | Tok::Semi | Tok::Eof) {
            return Ok(cell); // empty or labels-only cell
        }
        let (word, span) = match self.peek().tok.clone() {
            Tok::Ident(word) => (word, self.peek().span),
            other => {
                return Err(ParseError::new(
                    self.peek().span,
                    format!("expected an instruction or a label, found {}", other.describe()),
                ))
            }
        };
        match word.as_str() {
            "St" => {
                self.advance();
                let addr = self.address()?;
                let data = self.operand("as the store data")?;
                cell.instr = Some(Instruction::Store { addr, data });
            }
            "FenceLL" | "FenceLS" | "FenceSL" | "FenceSS" => {
                self.advance();
                let kind = match word.as_str() {
                    "FenceLL" => FenceKind::LL,
                    "FenceLS" => FenceKind::LS,
                    "FenceSL" => FenceKind::SL,
                    _ => FenceKind::SS,
                };
                cell.instr = Some(Instruction::Fence { kind });
            }
            "beq" | "bne" => {
                self.advance();
                let cond = if word == "beq" { BranchCond::Eq } else { BranchCond::Ne };
                let lhs = self.operand("as the first branch operand")?;
                self.expect(&Tok::Comma, "between the branch operands")?;
                let rhs = self.operand("as the second branch operand")?;
                self.expect(&Tok::Arrow, "before the branch target")?;
                let (target, target_span) = self.ident("a branch target label")?;
                plain_name(&target, target_span, "label name")?;
                cell.instr = Some(Instruction::Branch {
                    cond,
                    lhs,
                    rhs,
                    target: gam_isa::Label::new(target.clone()),
                });
                cell.branch_target = Some((target, target_span));
            }
            _ => match classify(&word, span)? {
                Word::Reg(dst) => {
                    self.advance();
                    self.expect(&Tok::Eq, "after the destination register")?;
                    let (op, op_span) = self.ident("`Ld` or an ALU operation")?;
                    match op.as_str() {
                        "Ld" => {
                            let addr = self.address()?;
                            cell.instr = Some(Instruction::Load { dst, addr });
                        }
                        "add" | "sub" | "and" | "or" | "xor" | "mov" => {
                            let alu = match op.as_str() {
                                "add" => AluOp::Add,
                                "sub" => AluOp::Sub,
                                "and" => AluOp::And,
                                "or" => AluOp::Or,
                                "xor" => AluOp::Xor,
                                _ => AluOp::Mov,
                            };
                            let lhs = self.operand("as the first ALU operand")?;
                            self.expect(&Tok::Comma, "between the ALU operands")?;
                            let rhs = self.operand("as the second ALU operand")?;
                            cell.instr = Some(Instruction::Alu { dst, op: alu, lhs, rhs });
                        }
                        other => {
                            return Err(ParseError::new(
                                op_span,
                                format!(
                                    "expected `Ld` or an ALU operation (add, sub, and, or, xor, \
                                     mov), found `{other}`"
                                ),
                            ))
                        }
                    }
                }
                _ => {
                    return Err(ParseError::new(
                        span,
                        format!(
                            "expected an instruction (`St`, `FenceXY`, `beq`, `bne` or \
                             `rN = …`), found `{word}`"
                        ),
                    ))
                }
            },
        }
        Ok(cell)
    }

    /// `[base]`, `[base + offset]` — base is a register, location name or
    /// integer address.
    fn address(&mut self) -> Result<Addr, ParseError> {
        self.expect(&Tok::LBracket, "to open the address")?;
        let base = self.operand("as the address base")?;
        let offset = if self.peek().tok == Tok::Plus {
            self.advance();
            match self.peek().tok {
                Tok::Num(n) => {
                    self.advance();
                    n
                }
                _ => {
                    let found = self.peek();
                    return Err(ParseError::new(
                        found.span,
                        format!(
                            "expected an integer offset after `+`, found {}",
                            found.tok.describe()
                        ),
                    ));
                }
            }
        } else {
            0
        };
        self.expect(&Tok::RBracket, "to close the address")?;
        Ok(Addr { base, offset })
    }

    /// A register, location name or integer literal.
    fn operand(&mut self, context: &str) -> Result<Operand, ParseError> {
        match self.peek().tok.clone() {
            Tok::Num(n) => {
                self.advance();
                Ok(Operand::imm(n))
            }
            Tok::Ident(name) => {
                let span = self.advance().span;
                match classify(&name, span)? {
                    Word::Reg(reg) => Ok(Operand::Reg(reg)),
                    Word::Plain => {
                        plain_name(&name, span, "location name")?;
                        Ok(Operand::Imm(Loc::new(&name).value()))
                    }
                    Word::Proc(_) => Err(ParseError::new(
                        span,
                        format!("processor `{name}` cannot be used {context}"),
                    )),
                }
            }
            other => Err(ParseError::new(
                self.peek().span,
                format!(
                    "expected a register, location or integer {context}, found {}",
                    other.describe()
                ),
            )),
        }
    }

    /// A value: a location name or an integer literal (no registers).
    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek().tok.clone() {
            Tok::Num(n) => {
                self.advance();
                Ok(Value::new(n))
            }
            Tok::Ident(name) => {
                let span = self.advance().span;
                match classify(&name, span)? {
                    Word::Plain => {
                        plain_name(&name, span, "location name")?;
                        Ok(Loc::new(&name).value())
                    }
                    _ => Err(ParseError::new(
                        span,
                        format!("expected a value (integer or location), found `{name}`"),
                    )),
                }
            }
            other => Err(ParseError::new(
                self.peek().span,
                format!("expected a value (integer or location), found {}", other.describe()),
            )),
        }
    }

    /// `P2:r1` (a register) or `a` / `0x10` (a memory location), validated
    /// against the thread count.
    fn observation(&mut self, num_threads: usize) -> Result<(Observation, Span), ParseError> {
        match self.peek().tok.clone() {
            Tok::Num(addr) => {
                let span = self.advance().span;
                Ok((Observation::Memory(Loc::from_address(addr)), span))
            }
            Tok::Ident(name) => {
                let span = self.advance().span;
                match classify(&name, span)? {
                    Word::Proc(proc) => {
                        if proc.index() >= num_threads {
                            return Err(ParseError::new(
                                span,
                                format!(
                                    "processor `{name}` does not exist (the program has \
                                     {num_threads} threads)"
                                ),
                            ));
                        }
                        self.expect(&Tok::Colon, "between the processor and the register")?;
                        let (reg_name, reg_span) = self.ident("a register")?;
                        match classify(&reg_name, reg_span)? {
                            Word::Reg(reg) => Ok((Observation::Register(proc, reg), span)),
                            _ => Err(ParseError::new(
                                reg_span,
                                format!("expected a register (`rN`), found `{reg_name}`"),
                            )),
                        }
                    }
                    Word::Plain => {
                        plain_name(&name, span, "location name")?;
                        Ok((Observation::Memory(Loc::new(&name)), span))
                    }
                    Word::Reg(_) => Err(ParseError::new(
                        span,
                        format!(
                            "a bare register cannot be observed; write `P<k>:{name}` to name \
                             its processor"
                        ),
                    )),
                }
            }
            other => Err(ParseError::new(
                self.peek().span,
                format!(
                    "expected an observation (`P<k>:rN` or a location), found {}",
                    other.describe()
                ),
            )),
        }
    }
}
