//! The token scanner shared by every structured section of a `.litmus` file
//! (init block, thread columns, `locations` clause, condition).
//!
//! The header and description lines are handled line-oriented by the parser
//! (a test name like `2+2w+fence-ss` is free text, not a token sequence);
//! everything below them is tokenized here with precise line/column spans.

use crate::diag::{ParseError, Span};

/// One token of the structured `.litmus` sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    /// An identifier: `St`, `r1`, `P2`, `a`, `FenceSS`, a label name, …
    Ident(String),
    /// An unsigned integer literal (decimal, or hexadecimal with `0x`).
    Num(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `|`
    Pipe,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `->`
    Arrow,
    /// `/\` — the conjunction of condition terms.
    And,
    /// End of input.
    Eof,
}

impl Tok {
    /// How the token reads in an error message.
    pub(crate) fn describe(&self) -> String {
        match self {
            Tok::Ident(name) => format!("`{name}`"),
            Tok::Num(value) => format!("`{value}`"),
            Tok::LBrace => "`{`".to_string(),
            Tok::RBrace => "`}`".to_string(),
            Tok::LBracket => "`[`".to_string(),
            Tok::RBracket => "`]`".to_string(),
            Tok::LParen => "`(`".to_string(),
            Tok::RParen => "`)`".to_string(),
            Tok::Pipe => "`|`".to_string(),
            Tok::Semi => "`;`".to_string(),
            Tok::Colon => "`:`".to_string(),
            Tok::Comma => "`,`".to_string(),
            Tok::Eq => "`=`".to_string(),
            Tok::Plus => "`+`".to_string(),
            Tok::Arrow => "`->`".to_string(),
            Tok::And => "`/\\`".to_string(),
            Tok::Eof => "end of input".to_string(),
        }
    }
}

/// A token plus the position it starts at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Token {
    pub(crate) tok: Tok,
    pub(crate) span: Span,
}

/// Tokenizes `text`, whose first line is line `start_line` of the original
/// file. `//` starts a comment running to the end of the line. The returned
/// stream always ends with a single [`Tok::Eof`].
pub(crate) fn lex(text: &str, start_line: usize) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut line = start_line;
    let mut col = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        let span = Span::new(line, col);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '/' => {
                chars.next();
                col += 1;
                match chars.peek() {
                    Some('/') => {
                        // Comment: consume to (but not including) the newline.
                        while chars.peek().is_some_and(|&c| c != '\n') {
                            chars.next();
                            col += 1;
                        }
                    }
                    Some('\\') => {
                        chars.next();
                        col += 1;
                        tokens.push(Token { tok: Tok::And, span });
                    }
                    _ => {
                        return Err(ParseError::new(span, "expected `//` comment or `/\\`"));
                    }
                }
            }
            '-' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'>') {
                    chars.next();
                    col += 1;
                    tokens.push(Token { tok: Tok::Arrow, span });
                } else {
                    return Err(ParseError::new(span, "expected `->`"));
                }
            }
            '0'..='9' => {
                let mut digits = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        digits.push(d);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                let cleaned = digits.replace('_', "");
                let parsed = if let Some(hex) = cleaned.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else if let Some(hex) = cleaned.strip_prefix("0X") {
                    u64::from_str_radix(hex, 16)
                } else {
                    cleaned.parse::<u64>()
                };
                match parsed {
                    Ok(value) => tokens.push(Token { tok: Tok::Num(value), span }),
                    Err(_) => {
                        return Err(ParseError::new(
                            span,
                            format!("`{digits}` is not a valid integer literal"),
                        ))
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        name.push(d);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token { tok: Tok::Ident(name), span });
            }
            _ => {
                let tok = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '|' => Tok::Pipe,
                    ';' => Tok::Semi,
                    ':' => Tok::Colon,
                    ',' => Tok::Comma,
                    '=' => Tok::Eq,
                    '+' => Tok::Plus,
                    other => {
                        return Err(ParseError::new(
                            span,
                            format!("unexpected character `{other}`"),
                        ))
                    }
                };
                chars.next();
                col += 1;
                tokens.push(Token { tok, span });
            }
        }
    }
    tokens.push(Token { tok: Tok::Eof, span: Span::new(line, col) });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<Tok> {
        lex(text, 1).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn tokenizes_an_instruction_cell() {
        assert_eq!(
            kinds("r1 = Ld [b + 8]"),
            vec![
                Tok::Ident("r1".into()),
                Tok::Eq,
                Tok::Ident("Ld".into()),
                Tok::LBracket,
                Tok::Ident("b".into()),
                Tok::Plus,
                Tok::Num(8),
                Tok::RBracket,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_condition_syntax() {
        assert_eq!(
            kinds("exists (P2:r1 = 1 /\\ a = 0x10)"),
            vec![
                Tok::Ident("exists".into()),
                Tok::LParen,
                Tok::Ident("P2".into()),
                Tok::Colon,
                Tok::Ident("r1".into()),
                Tok::Eq,
                Tok::Num(1),
                Tok::And,
                Tok::Ident("a".into()),
                Tok::Eq,
                Tok::Num(16),
                Tok::RParen,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn tracks_lines_and_columns() {
        let tokens = lex("ab cd\n  ef", 5).unwrap();
        assert_eq!(tokens[0].span, Span::new(5, 1));
        assert_eq!(tokens[1].span, Span::new(5, 4));
        assert_eq!(tokens[2].span, Span::new(6, 3));
        assert_eq!(tokens[3].tok, Tok::Eof);
    }

    #[test]
    fn comments_run_to_end_of_line() {
        assert_eq!(kinds("a // b c d\n;"), vec![Tok::Ident("a".into()), Tok::Semi, Tok::Eof]);
    }

    #[test]
    fn rejects_stray_characters_with_positions() {
        let err = lex("a\n  $", 1).unwrap_err();
        assert_eq!(err.span, Span::new(2, 3));
        assert!(err.message.contains('$'));
        assert!(lex("a - b", 1).unwrap_err().message.contains("->"));
        assert!(lex("a / b", 1).unwrap_err().message.contains("/\\"));
        assert!(lex("99999999999999999999999", 1).unwrap_err().message.contains("integer"));
    }

    #[test]
    fn arrow_and_branch_tokens() {
        assert_eq!(
            kinds("beq r1, 0 -> done"),
            vec![
                Tok::Ident("beq".into()),
                Tok::Ident("r1".into()),
                Tok::Comma,
                Tok::Num(0),
                Tok::Arrow,
                Tok::Ident("done".into()),
                Tok::Eof,
            ]
        );
    }
}
