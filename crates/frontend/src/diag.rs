//! Source positions and parse diagnostics for the `.litmus` text format.

use std::fmt;

/// A position in a `.litmus` source text (both components 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (counted in characters, not bytes).
    pub col: usize,
}

impl Span {
    /// Creates a span from 1-based line and column.
    #[must_use]
    pub const fn new(line: usize, col: usize) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// A `.litmus` parse failure: what went wrong and where.
///
/// Rendered as `line L, column C: message`, so a CLI can prefix the file
/// name to get the conventional `file:line:col`-style diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error was detected.
    pub span: Span,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at a span.
    #[must_use]
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        ParseError { span, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_render_one_based_positions() {
        assert_eq!(Span::new(3, 7).to_string(), "line 3, column 7");
    }

    #[test]
    fn errors_render_span_and_message() {
        let err = ParseError::new(Span::new(2, 1), "expected `;`");
        assert_eq!(err.to_string(), "line 2, column 1: expected `;`");
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ParseError>();
    }

    #[test]
    fn spans_order_by_line_then_column() {
        assert!(Span::new(1, 9) < Span::new(2, 1));
        assert!(Span::new(2, 1) < Span::new(2, 2));
    }
}
