//! The canonical `.litmus` pretty-printer.
//!
//! [`print_litmus`] renders any [`LitmusTest`] as text that
//! [`crate::parser::parse_litmus`] reads back to a structurally equal test —
//! the round-trip guarantee `parse(print(t)) == Ok(t)`. It holds because
//! every rendering choice is invertible:
//!
//! * a location address prints as a symbolic name only when
//!   `Loc::new(name)` hashes to exactly that address (see
//!   [`NameTable`]), and as a plain integer otherwise — both forms parse
//!   back to the same address;
//! * the `locations` clause always lists *every* observed quantity in its
//!   original order, so the parser never has to reconstruct the order from
//!   the (sorted) condition;
//! * labels print immediately before the instruction they target, with
//!   end-of-thread labels in a trailing cell.
//!
//! The only inputs outside the guarantee are tests whose name or
//! description contain a newline, whose observed list contains duplicates,
//! or whose label names are not identifiers — none of which the builders in
//! this workspace produce.

use std::fmt::Write as _;

use gam_isa::litmus::{LitmusTest, Observation};
use gam_isa::{Addr, Instruction, Operand, ThreadProgram, Value};

use crate::names::NameTable;

/// Renders a litmus test as canonical `.litmus` text using the default
/// location-name dictionary.
#[must_use]
pub fn print_litmus(test: &LitmusTest) -> String {
    print_litmus_with(test, &NameTable::default())
}

/// Renders a litmus test as canonical `.litmus` text with a caller-provided
/// name table.
#[must_use]
pub fn print_litmus_with(test: &LitmusTest, names: &NameTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "GAM {}", test.name());
    if !test.description().is_empty() {
        let escaped = test.description().replace('\\', "\\\\").replace('"', "\\\"");
        let _ = writeln!(out, "\"{escaped}\"");
    }
    if !test.initial_memory().is_empty() {
        let entries: Vec<String> = test
            .initial_memory()
            .iter()
            .map(|(addr, value)| {
                format!("{} = {};", render_address(*addr, names), render_value(*value, names))
            })
            .collect();
        let _ = writeln!(out, "{{ {} }}", entries.join(" "));
    }

    // Thread columns: header row plus one row per program-order position,
    // each column padded to its widest cell.
    let threads = test.program().threads();
    let mut columns: Vec<Vec<String>> =
        threads.iter().map(|thread| thread_cells(thread, names)).collect();
    let rows = columns.iter().map(Vec::len).max().unwrap_or(0);
    for cells in &mut columns {
        cells.resize(rows, String::new());
    }
    let widths: Vec<usize> = columns
        .iter()
        .enumerate()
        .map(|(i, cells)| {
            cells.iter().map(String::len).max().unwrap_or(0).max(format!("P{}", i + 1).len())
        })
        .collect();
    let header: Vec<String> = widths
        .iter()
        .copied()
        .enumerate()
        .map(|(i, width)| format!("{:<width$}", format!("P{}", i + 1)))
        .collect();
    let _ = writeln!(out, "{} ;", header.join(" | "));
    for row in 0..rows {
        let cells: Vec<String> = columns
            .iter()
            .zip(widths.iter().copied())
            .map(|(cells, width)| format!("{:<width$}", cells[row]))
            .collect();
        let _ = writeln!(out, "{} ;", cells.join(" | "));
    }

    if !test.observed().is_empty() {
        let observed: Vec<String> =
            test.observed().iter().map(|obs| render_observation(obs, names)).collect();
        let _ = writeln!(out, "locations ({})", observed.join("; "));
    }
    if !test.condition().is_empty() {
        let terms: Vec<String> = test
            .condition()
            .iter()
            .map(|(obs, value)| {
                format!("{} = {}", render_observation(obs, names), render_value(*value, names))
            })
            .collect();
        let _ = writeln!(out, "exists ({})", terms.join(" /\\ "));
    }
    out
}

/// The cells of one thread column: labels prefix the instruction they
/// precede; labels past the last instruction get a trailing cell.
fn thread_cells(thread: &ThreadProgram, names: &NameTable) -> Vec<String> {
    let labels_at = |index: usize| -> String {
        thread
            .labels()
            .iter()
            .filter(|(_, target)| **target == index)
            .map(|(name, _)| format!("{name}: "))
            .collect()
    };
    let mut cells: Vec<String> = thread
        .instructions()
        .iter()
        .enumerate()
        .map(|(index, instr)| format!("{}{}", labels_at(index), render_instruction(instr, names)))
        .collect();
    let trailing = labels_at(thread.len());
    if !trailing.is_empty() {
        cells.push(trailing.trim_end().to_string());
    }
    cells
}

fn render_instruction(instr: &Instruction, names: &NameTable) -> String {
    match instr {
        Instruction::Alu { dst, op, lhs, rhs } => {
            format!("{dst} = {op} {}, {}", render_operand(*lhs, names), render_operand(*rhs, names))
        }
        Instruction::Load { dst, addr } => format!("{dst} = Ld {}", render_addr(*addr, names)),
        Instruction::Store { addr, data } => {
            format!("St {} {}", render_addr(*addr, names), render_operand(*data, names))
        }
        Instruction::Fence { kind } => kind.to_string(),
        Instruction::Branch { cond, lhs, rhs, target } => {
            format!(
                "{cond} {}, {} -> {target}",
                render_operand(*lhs, names),
                render_operand(*rhs, names)
            )
        }
    }
}

fn render_addr(addr: Addr, names: &NameTable) -> String {
    let base = render_operand(addr.base, names);
    if addr.offset == 0 {
        format!("[{base}]")
    } else {
        format!("[{base} + {}]", addr.offset)
    }
}

fn render_operand(operand: Operand, names: &NameTable) -> String {
    match operand {
        Operand::Reg(reg) => reg.to_string(),
        Operand::Imm(value) => render_value(value, names),
    }
}

/// A value prints as a symbolic location name when the name table can invert
/// it, and as a plain integer otherwise.
fn render_value(value: Value, names: &NameTable) -> String {
    names.name_of(value.raw()).map_or_else(|| value.raw().to_string(), str::to_string)
}

/// An address (an initial-memory key or memory observation) prints like a
/// value: name when invertible, integer otherwise.
fn render_address(address: u64, names: &NameTable) -> String {
    names.name_of(address).map_or_else(|| address.to_string(), str::to_string)
}

fn render_observation(obs: &Observation, names: &NameTable) -> String {
    match obs {
        Observation::Register(proc, reg) => format!("{proc}:{reg}"),
        Observation::Memory(loc) => render_address(loc.address(), names),
    }
}
