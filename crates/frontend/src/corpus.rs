//! Loading a directory of `.litmus` files (plus an optional expectations
//! table) and exporting the in-code library as such a directory.
//!
//! A corpus directory contains any number of `*.litmus` files — loaded in
//! file-name order — and optionally an `expectations.txt` in the
//! [`gam_verify::expectations`] text format recording the expected verdict
//! of every model on every test.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use gam_isa::litmus::{library, LitmusTest};
use gam_verify::expectations::{
    parse_expectations, render_expectations, ExpectationParseError, OwnedExpectation,
};

use crate::diag::ParseError;
use crate::printer::print_litmus;

/// The file name of the per-corpus expectations table.
pub const EXPECTATIONS_FILE: &str = "expectations.txt";

/// One parsed test and the file it came from.
#[derive(Debug, Clone)]
pub struct CorpusTest {
    /// The `.litmus` file path.
    pub path: PathBuf,
    /// The parsed test.
    pub test: LitmusTest,
}

/// A loaded corpus: every test in file-name order, plus expectations.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The directory the corpus was loaded from.
    pub dir: PathBuf,
    /// The parsed tests, in file-name order.
    pub tests: Vec<CorpusTest>,
    /// Rows of the corpus `expectations.txt` (empty if the file is absent).
    pub expectations: Vec<OwnedExpectation>,
}

impl Corpus {
    /// Loads every `*.litmus` file under `dir` (non-recursive, file-name
    /// order) and the optional `expectations.txt` next to them.
    ///
    /// # Errors
    ///
    /// Returns a [`CorpusError`] on I/O failure, on the first file that
    /// fails to parse (with its position), on duplicate test names across
    /// files, or when the directory contains no `.litmus` file at all.
    pub fn load(dir: impl AsRef<Path>) -> Result<Corpus, CorpusError> {
        let dir = dir.as_ref().to_path_buf();
        let entries =
            fs::read_dir(&dir).map_err(|error| CorpusError::Io { path: dir.clone(), error })?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|error| CorpusError::Io { path: dir.clone(), error })?;
            let path = entry.path();
            if path.extension().is_some_and(|ext| ext == "litmus") {
                paths.push(path);
            }
        }
        paths.sort();
        if paths.is_empty() {
            return Err(CorpusError::Empty { dir });
        }
        let mut tests: Vec<CorpusTest> = Vec::new();
        for path in paths {
            let text = fs::read_to_string(&path)
                .map_err(|error| CorpusError::Io { path: path.clone(), error })?;
            let test = crate::parser::parse_litmus(&text)
                .map_err(|error| CorpusError::Parse { path: path.clone(), error })?;
            if let Some(existing) = tests.iter().find(|t| t.test.name() == test.name()) {
                return Err(CorpusError::DuplicateTest {
                    name: test.name().to_string(),
                    first: existing.path.clone(),
                    second: path,
                });
            }
            tests.push(CorpusTest { path, test });
        }
        let expectations_path = dir.join(EXPECTATIONS_FILE);
        let expectations = if expectations_path.exists() {
            let text = fs::read_to_string(&expectations_path)
                .map_err(|error| CorpusError::Io { path: expectations_path.clone(), error })?;
            parse_expectations(&text)
                .map_err(|error| CorpusError::Expectations { path: expectations_path, error })?
        } else {
            Vec::new()
        };
        Ok(Corpus { dir, tests, expectations })
    }

    /// The tests without their paths, in corpus order — the shape
    /// [`gam_engine::Engine::run_suite`] wants.
    #[must_use]
    pub fn tests(&self) -> Vec<LitmusTest> {
        self.tests.iter().map(|t| t.test.clone()).collect()
    }

    /// The expectation row for a test, if the corpus has one.
    #[must_use]
    pub fn expectation_for(&self, test: &str) -> Option<&OwnedExpectation> {
        self.expectations.iter().find(|row| row.test == test)
    }

    /// A display name for the corpus (its directory path).
    #[must_use]
    pub fn name(&self) -> String {
        self.dir.display().to_string()
    }

    /// Expectation-coverage gaps: corpus tests with no `expectations.txt`
    /// row (their verdicts would go unchecked) and rows naming no corpus
    /// test (dangling after a rename). Empty when the corpus carries no
    /// expectations at all — a corpus without the file opts out entirely.
    ///
    /// `gam run` treats any gap as a failure, so a test silently dropping
    /// out of verdict enforcement cannot go unnoticed in CI.
    #[must_use]
    pub fn expectation_coverage_gaps(&self) -> Vec<String> {
        let mut gaps = Vec::new();
        if self.expectations.is_empty() {
            return gaps;
        }
        for test in &self.tests {
            if self.expectation_for(test.test.name()).is_none() {
                gaps.push(format!(
                    "test `{}` has no expectations row — its verdicts are unchecked",
                    test.test.name()
                ));
            }
        }
        for row in &self.expectations {
            if !self.tests.iter().any(|t| t.test.name() == row.test) {
                gaps.push(format!("expectations row `{}` names no test in the corpus", row.test));
            }
        }
        gaps
    }
}

/// Writes the whole in-code litmus library as a corpus under `dir`: one
/// pretty-printed `.litmus` file per test plus an `expectations.txt`
/// rendering the paper's expectation table. Returns the written paths.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export_library(dir: impl AsRef<Path>) -> io::Result<Vec<PathBuf>> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for test in library::all_tests() {
        let path = dir.join(format!("{}.litmus", test.name()));
        fs::write(&path, print_litmus(&test))?;
        written.push(path);
    }
    let rows: Vec<OwnedExpectation> =
        gam_verify::expectations::paper_expectations().iter().map(OwnedExpectation::from).collect();
    let path = dir.join(EXPECTATIONS_FILE);
    fs::write(&path, render_expectations(&rows))?;
    written.push(path);
    Ok(written)
}

/// Why a corpus failed to load.
#[derive(Debug)]
pub enum CorpusError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        error: io::Error,
    },
    /// A `.litmus` file failed to parse.
    Parse {
        /// The file that failed.
        path: PathBuf,
        /// The parse diagnostic (line/column inside the file).
        error: ParseError,
    },
    /// The `expectations.txt` failed to parse.
    Expectations {
        /// The file that failed.
        path: PathBuf,
        /// The parse diagnostic (line inside the file).
        error: ExpectationParseError,
    },
    /// The directory contains no `.litmus` file.
    Empty {
        /// The directory.
        dir: PathBuf,
    },
    /// Two files define a test with the same name.
    DuplicateTest {
        /// The duplicated test name.
        name: String,
        /// The file that defined it first.
        first: PathBuf,
        /// The file that defined it again.
        second: PathBuf,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            CorpusError::Parse { path, error } => write!(f, "{}: {error}", path.display()),
            CorpusError::Expectations { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            CorpusError::Empty { dir } => write!(f, "{}: no .litmus files found", dir.display()),
            CorpusError::DuplicateTest { name, first, second } => write!(
                f,
                "test `{name}` is defined in both {} and {}",
                first.display(),
                second.display()
            ),
        }
    }
}

impl std::error::Error for CorpusError {}
