//! Canonicalization of litmus tests for outcome caching.
//!
//! Two litmus tests that differ only in *naming* — thread order, register
//! indices, label names, symbolic location names — have identical verdicts
//! under every model, so a long-running check service should answer the
//! renamed variant from the cache entry of the first. This module computes a
//! canonical form that collapses those symmetries:
//!
//! * **Thread order**: the canonical text is the minimum over all thread
//!   permutations (exhaustive up to [`MAX_PERMUTED_THREADS`] threads, a
//!   deterministic skeleton-sort heuristic above that).
//! * **Registers**: renamed per thread to `r1, r2, …` in first-use order,
//!   visiting each instruction's operands in a fixed order.
//! * **Labels**: renamed per thread to `L1, L2, …` ordered by target
//!   position; branch targets are remapped along.
//! * **Locations**: renamed to the canonical dictionary `a, b, c, …` in
//!   first-use order — but only when a conservative dataflow screen proves
//!   the rename cannot change program behaviour (see below). When the screen
//!   bails, location names are left untouched; the other three symmetries
//!   still apply, so byte-identical resubmissions always canonicalize
//!   identically.
//!
//! # Why location renaming needs a screen
//!
//! Location "names" are concrete addresses ([`gam_isa::Loc::new`] hashes the
//! name), and addresses are first-class values: programs store them, load
//! them and dereference them. Renaming is only sound if every address flows
//! through the program *exactly* (moves, loads of address-valued memory, and
//! the paper's `+dep −dep` artificial-dependency idiom) and is never
//! combined arithmetically with data. The screen verifies:
//!
//! * no `[base + offset]` address expressions (an offset shifts an address
//!   off its renamed counterpart);
//! * every constant is either an address (≥ [`gam_isa::Loc::REGION_BASE`])
//!   or small data (< [`gam_isa::Loc::REGION_STRIDE`]) — nothing in between;
//! * at most [`MAX_DATA_ALU`] data ALU instructions, so data values can
//!   never drift up into (or wrap down into) the address window: each ALU
//!   op at most doubles the magnitude bound, and
//!   `0x1000 << 12 = 0x100_0000` stays three orders below the window floor,
//!   while wrapped negatives stay above `2^63`, three orders above its
//!   ceiling;
//! * a per-thread taint fixpoint (taint = "may hold an exact address"):
//!   `mov` propagates, loads taint their destination whenever any reachable
//!   memory content is an address, the two-instruction artificial-dependency
//!   idiom is recognized and allowed — and any *other* ALU instruction that
//!   reads a tainted register or an address immediate bails the screen.
//!
//! Tainted registers may still be dereferenced, stored, compared by
//! branches (only `Eq`/`Ne` exist, both preserved by injective renaming) and
//! observed: all of those see the renamed address consistently.
//!
//! The canonical text is rendered by the round-trip-pinned pretty-printer
//! ([`crate::printer::print_litmus_with`]), so `parse(canonical_text(t))`
//! reproduces the canonical test exactly and the hash is a hash of real,
//! valid `.litmus` syntax — inspectable with `gam print`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use gam_isa::litmus::{LitmusTest, Observation};
use gam_isa::{Addr, AluOp, Instruction, Loc, Operand, ProcId, Program, Reg, ThreadProgram, Value};

use crate::names::NameTable;
use crate::printer::print_litmus_with;

/// Threads up to this count are canonicalized by exhaustive permutation
/// (5! = 120 renderings); larger programs fall back to a deterministic
/// skeleton sort that is invariant under register/location renaming but not
/// under permutations of *identical* thread skeletons.
pub const MAX_PERMUTED_THREADS: usize = 5;

/// Maximum number of data ALU instructions (non-`mov`, non-idiom) before the
/// location-renaming screen bails. See the module docs for the drift bound.
pub const MAX_DATA_ALU: usize = 12;

/// A 128-bit canonical test hash (two independent FNV-1a passes over the
/// canonical text), rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalHash {
    hi: u64,
    lo: u64,
}

impl fmt::Display for CanonicalHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// A canonicalized litmus test together with its rendered text.
#[derive(Debug, Clone)]
pub struct CanonicalForm {
    /// The rebuilt test: threads permuted, registers/labels renamed, and —
    /// when sound — locations renamed onto the canonical dictionary.
    pub test: LitmusTest,
    /// The canonical `.litmus` rendering of `test`; [`canonical_hash`]
    /// hashes exactly these bytes.
    pub text: String,
}

/// Computes the canonical form of a litmus test.
#[must_use]
pub fn canonical_form(test: &LitmusTest) -> CanonicalForm {
    let _phase = gam_obs::phase("canon");
    let renamable = renamable_addresses(test);
    let n = test.program().num_threads();
    let orders: Vec<Vec<usize>> = if n <= MAX_PERMUTED_THREADS {
        permutations(n)
    } else {
        vec![skeleton_order(test, renamable.as_ref())]
    };
    orders
        .into_iter()
        .map(|order| normal_form(test, &order, renamable.as_ref()))
        .min_by(|a, b| a.text.cmp(&b.text))
        .expect("at least one thread order")
}

/// The canonical `.litmus` text of a test (see [`canonical_form`]).
#[must_use]
pub fn canonical_text(test: &LitmusTest) -> String {
    canonical_form(test).text
}

/// The canonical test itself (see [`canonical_form`]).
#[must_use]
pub fn canonical_test(test: &LitmusTest) -> LitmusTest {
    canonical_form(test).test
}

/// The canonical hash of a test: 128 bits of FNV-1a over the canonical text.
#[must_use]
pub fn canonical_hash(test: &LitmusTest) -> CanonicalHash {
    let text = canonical_text(test);
    CanonicalHash {
        hi: fnv1a(text.as_bytes(), 0xcbf2_9ce4_8422_2325),
        lo: fnv1a(text.as_bytes(), 0x6c62_272e_07bb_0142),
    }
}

fn fnv1a(bytes: &[u8], offset_basis: u64) -> u64 {
    let mut hash = offset_basis;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Location-renaming soundness screen
// ---------------------------------------------------------------------------

/// Classifies every constant in the test and runs the taint dataflow; returns
/// the set of renamable addresses, or `None` when renaming cannot be proven
/// sound (location names are then left as-is).
fn renamable_addresses(test: &LitmusTest) -> Option<BTreeSet<u64>> {
    let mut addrs = BTreeSet::new();
    // Pass 1: collect and classify every constant.
    let mut classify = |v: u64| -> Option<()> {
        if v >= Loc::REGION_BASE {
            addrs.insert(v);
            Some(())
        } else if v >= Loc::REGION_STRIDE {
            None // mid-range constant: neither clearly data nor an address
        } else {
            Some(()) // small data, maps to itself
        }
    };
    let mut classify_operand = |operand: &Operand| -> Option<()> {
        match operand {
            Operand::Imm(v) => classify(v.raw()),
            Operand::Reg(_) => Some(()),
        }
    };
    for thread in test.program().threads() {
        for instr in thread.instructions() {
            match instr {
                Instruction::Alu { lhs, rhs, .. } | Instruction::Branch { lhs, rhs, .. } => {
                    classify_operand(lhs)?;
                    classify_operand(rhs)?;
                }
                Instruction::Load { addr, .. } => {
                    if addr.offset != 0 {
                        return None;
                    }
                    classify_operand(&addr.base)?;
                }
                Instruction::Store { addr, data } => {
                    if addr.offset != 0 {
                        return None;
                    }
                    classify_operand(&addr.base)?;
                    classify_operand(data)?;
                }
                Instruction::Fence { .. } => {}
            }
        }
    }
    for (&key, &value) in test.initial_memory() {
        classify(key)?;
        classify(value.raw())?;
    }
    for obs in test.observed() {
        if let Observation::Memory(loc) = obs {
            classify(loc.address())?;
        }
    }
    for (obs, value) in test.condition().iter() {
        if let Observation::Memory(loc) = obs {
            classify(loc.address())?;
        }
        classify(value.raw())?;
    }

    // Pass 2: recognize the artificial-dependency idiom
    // (`d1 = add addr, rd; d2 = sub d1, rd`) so its two ALU instructions are
    // exempt from the data-ALU rules below.
    let threads = test.program().threads();
    let mut idiom: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); threads.len()];
    for (t, thread) in threads.iter().enumerate() {
        let ins = thread.instructions();
        for i in 0..ins.len().saturating_sub(1) {
            let Instruction::Alu { dst: d1, op: AluOp::Add, lhs, rhs } = &ins[i] else {
                continue;
            };
            let dep = match (lhs, rhs) {
                (Operand::Imm(v), Operand::Reg(r)) | (Operand::Reg(r), Operand::Imm(v))
                    if addrs.contains(&v.raw()) =>
                {
                    *r
                }
                _ => continue,
            };
            let Instruction::Alu {
                dst: d2,
                op: AluOp::Sub,
                lhs: Operand::Reg(l),
                rhs: Operand::Reg(r),
            } = &ins[i + 1]
            else {
                continue;
            };
            if *l != *d1 || *r != dep || dep == *d1 {
                continue;
            }
            if *d1 != *d2 {
                // The intermediate register survives the idiom; it holds
                // address + data, which must not escape. Require that nothing
                // else reads it and that it is not observed.
                let escapes = ins
                    .iter()
                    .enumerate()
                    .any(|(j, other)| j != i + 1 && other.read_set().contains(d1))
                    || test.observed().iter().any(|obs| {
                        matches!(obs, Observation::Register(p, r)
                            if *p == thread.proc() && *r == *d1)
                    });
                if escapes {
                    continue;
                }
            }
            idiom[t].insert(i);
            idiom[t].insert(i + 1);
        }
    }

    // Pass 3: bound the number of data ALU instructions (the drift bound).
    let data_alus: usize = threads
        .iter()
        .enumerate()
        .map(|(t, thread)| {
            thread
                .instructions()
                .iter()
                .enumerate()
                .filter(|(i, instr)| {
                    matches!(instr, Instruction::Alu { op, .. } if *op != AluOp::Mov)
                        && !idiom[t].contains(i)
                })
                .count()
        })
        .sum();
    if data_alus > MAX_DATA_ALU {
        return None;
    }

    // Pass 4: taint fixpoint. Taint = "may hold an exact address".
    let mut tainted: BTreeSet<(usize, Reg)> = BTreeSet::new();
    loop {
        let mem_has_addr = test.initial_memory().values().any(|v| addrs.contains(&v.raw()))
            || threads.iter().enumerate().any(|(t, thread)| {
                thread.instructions().iter().any(|instr| match instr {
                    Instruction::Store { data: Operand::Imm(v), .. } => addrs.contains(&v.raw()),
                    Instruction::Store { data: Operand::Reg(r), .. } => tainted.contains(&(t, *r)),
                    _ => false,
                })
            });
        let mut changed = false;
        for (t, thread) in threads.iter().enumerate() {
            for (i, instr) in thread.instructions().iter().enumerate() {
                let taint = match instr {
                    Instruction::Load { dst, .. } if mem_has_addr => Some(*dst),
                    Instruction::Alu { dst, op: AluOp::Mov, lhs, .. } => {
                        let source_tainted = match lhs {
                            Operand::Imm(v) => addrs.contains(&v.raw()),
                            Operand::Reg(r) => tainted.contains(&(t, *r)),
                        };
                        source_tainted.then_some(*dst)
                    }
                    Instruction::Alu { dst, .. } if idiom[t].contains(&i) => Some(*dst),
                    _ => None,
                };
                if let Some(dst) = taint {
                    changed |= tainted.insert((t, dst));
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 5: any remaining ALU instruction mixing taint or address
    // immediates into arithmetic defeats the rename.
    for (t, thread) in threads.iter().enumerate() {
        for (i, instr) in thread.instructions().iter().enumerate() {
            let Instruction::Alu { op, lhs, rhs, .. } = instr else { continue };
            if *op == AluOp::Mov || idiom[t].contains(&i) {
                continue;
            }
            for operand in [lhs, rhs] {
                match operand {
                    Operand::Imm(v) if addrs.contains(&v.raw()) => return None,
                    Operand::Reg(r) if tainted.contains(&(t, *r)) => return None,
                    _ => {}
                }
            }
        }
    }
    Some(addrs)
}

// ---------------------------------------------------------------------------
// Normal form under one thread order
// ---------------------------------------------------------------------------

/// Renaming state threaded through one normal-form construction.
struct Renamer {
    /// Old address → canonical address; only addresses in `renamable` are
    /// mapped, everything else is identity.
    addr_map: BTreeMap<u64, u64>,
    /// Canonical `(name, address)` pool, assigned in first-use order.
    pool: Vec<(String, u64)>,
    next_addr: usize,
    renamable: BTreeSet<u64>,
}

impl Renamer {
    fn new(renamable: Option<&BTreeSet<u64>>) -> Self {
        let renamable = renamable.cloned().unwrap_or_default();
        Renamer {
            addr_map: BTreeMap::new(),
            pool: canonical_pool(renamable.len()),
            next_addr: 0,
            renamable,
        }
    }

    fn map_addr(&mut self, v: u64) -> u64 {
        if !self.renamable.contains(&v) {
            return v;
        }
        if let Some(&mapped) = self.addr_map.get(&v) {
            return mapped;
        }
        let mapped = self.pool[self.next_addr].1;
        self.next_addr += 1;
        self.addr_map.insert(v, mapped);
        mapped
    }

    fn map_value(&mut self, v: Value) -> Value {
        Value::new(self.map_addr(v.raw()))
    }

    fn map_operand(&mut self, operand: &Operand, regs: &mut RegRenamer) -> Operand {
        match operand {
            Operand::Imm(v) => Operand::Imm(self.map_value(*v)),
            Operand::Reg(r) => Operand::Reg(regs.map(*r)),
        }
    }

    fn name_table(&self) -> NameTable {
        let mut table = NameTable::empty();
        for (name, _) in &self.pool {
            table.add(name);
        }
        table
    }
}

/// Per-thread register renaming in first-use order.
struct RegRenamer {
    map: BTreeMap<Reg, Reg>,
    next: u32,
}

impl RegRenamer {
    fn new() -> Self {
        RegRenamer { map: BTreeMap::new(), next: 1 }
    }

    fn map(&mut self, r: Reg) -> Reg {
        if let Some(&mapped) = self.map.get(&r) {
            return mapped;
        }
        let mapped = Reg::new(self.next);
        self.next += 1;
        self.map.insert(r, mapped);
        mapped
    }
}

fn normal_form(
    test: &LitmusTest,
    order: &[usize],
    renamable: Option<&BTreeSet<u64>>,
) -> CanonicalForm {
    let threads = test.program().threads();
    let mut renamer = Renamer::new(renamable);
    let mut reg_renamers: Vec<RegRenamer> = (0..threads.len()).map(|_| RegRenamer::new()).collect();
    // new_pos[old thread index] = position in the canonical order.
    let mut new_pos = vec![0usize; threads.len()];
    for (pos, &old) in order.iter().enumerate() {
        new_pos[old] = pos;
    }

    let mut new_threads = Vec::with_capacity(threads.len());
    for (pos, &old) in order.iter().enumerate() {
        let thread = &threads[old];
        let regs = &mut reg_renamers[old];
        // Labels renamed to L1, L2, … ordered by target position.
        let mut labels: Vec<(&String, usize)> =
            thread.labels().iter().map(|(name, &target)| (name, target)).collect();
        labels.sort_by(|a, b| (a.1, a.0).cmp(&(b.1, b.0)));
        let label_map: BTreeMap<&str, String> = labels
            .iter()
            .enumerate()
            .map(|(k, (name, _))| (name.as_str(), format!("L{}", k + 1)))
            .collect();
        let labels_at = |index: usize| {
            labels
                .iter()
                .filter(move |(_, target)| *target == index)
                .map(|(name, _)| label_map[name.as_str()].clone())
        };

        let mut builder = ThreadProgram::builder(ProcId::new(pos));
        for (i, instr) in thread.instructions().iter().enumerate() {
            for label in labels_at(i) {
                builder.label(label);
            }
            // Operand visit order is fixed per instruction shape so that
            // register first-use assignment is naming-independent:
            // sources before destinations, address bases before data.
            let rebuilt = match instr {
                Instruction::Alu { dst, op, lhs, rhs } => {
                    let lhs = renamer.map_operand(lhs, regs);
                    let rhs = renamer.map_operand(rhs, regs);
                    Instruction::Alu { dst: regs.map(*dst), op: *op, lhs, rhs }
                }
                Instruction::Load { dst, addr } => {
                    let base = renamer.map_operand(&addr.base, regs);
                    Instruction::Load {
                        dst: regs.map(*dst),
                        addr: Addr { base, offset: addr.offset },
                    }
                }
                Instruction::Store { addr, data } => {
                    let base = renamer.map_operand(&addr.base, regs);
                    let data = renamer.map_operand(data, regs);
                    Instruction::Store { addr: Addr { base, offset: addr.offset }, data }
                }
                Instruction::Fence { kind } => Instruction::Fence { kind: *kind },
                Instruction::Branch { cond, lhs, rhs, target } => {
                    let lhs = renamer.map_operand(lhs, regs);
                    let rhs = renamer.map_operand(rhs, regs);
                    let target = match label_map.get(target.name()) {
                        Some(name) => gam_isa::Label::new(name.clone()),
                        None => target.clone(),
                    };
                    Instruction::Branch { cond: *cond, lhs, rhs, target }
                }
            };
            builder.push(rebuilt);
        }
        for label in labels_at(thread.len()) {
            builder.label(label);
        }
        new_threads.push(builder.build());
    }

    // Assign canonical names to renamable addresses that never appear in an
    // instruction (initial-memory-only or observation-only locations), in an
    // order derived from renaming-invariant signatures; ties fall back to the
    // old address, which is only reachable for fully symmetric locations
    // where either assignment yields identical text.
    let leftovers: Vec<u64> = {
        let mut left: Vec<u64> = renamer
            .renamable
            .iter()
            .copied()
            .filter(|a| !renamer.addr_map.contains_key(a))
            .collect();
        left.sort_by_key(|&a| leftover_signature(test, &renamer.renamable, a));
        left
    };
    for addr in leftovers {
        renamer.map_addr(addr);
    }

    let mut initial: Vec<(u64, Value)> = test
        .initial_memory()
        .iter()
        .map(|(&key, &value)| (renamer.map_addr(key), renamer.map_value(value)))
        .collect();
    initial.sort_by_key(|&(key, _)| key);

    let mut map_observation = |renamer: &mut Renamer, obs: &Observation| match obs {
        Observation::Register(proc, reg) => {
            let t = proc.index();
            Observation::Register(ProcId::new(new_pos[t]), reg_renamers[t].map(*reg))
        }
        Observation::Memory(loc) => {
            Observation::Memory(Loc::from_address(renamer.map_addr(loc.address())))
        }
    };
    let mut observed: Vec<Observation> = Vec::new();
    for obs in test.observed() {
        let mapped = map_observation(&mut renamer, obs);
        if !observed.contains(&mapped) {
            observed.push(mapped);
        }
    }
    observed.sort();
    let mut condition: Vec<(Observation, Value)> = test
        .condition()
        .iter()
        .map(|(obs, &value)| (map_observation(&mut renamer, obs), renamer.map_value(value)))
        .collect();
    condition.sort();

    let mut builder = LitmusTest::builder("canon", Program::new(new_threads));
    for (key, value) in initial {
        builder = builder.init(Loc::from_address(key), value);
    }
    for obs in observed {
        builder = builder.observe(obs);
    }
    for (obs, value) in condition {
        builder = builder.expect(obs, value);
    }
    let canonical = builder.build();
    let text = print_litmus_with(&canonical, &renamer.name_table());
    CanonicalForm { test: canonical, text }
}

/// A renaming-invariant sort key for a renamable address that never appears
/// in an instruction: what it is initialized to, whether it is observed, and
/// which condition values mention it. Address-valued components collapse to
/// a marker (their concrete value is itself subject to renaming).
fn leftover_signature(
    test: &LitmusTest,
    renamable: &BTreeSet<u64>,
    addr: u64,
) -> (u8, u64, bool, Vec<u64>, usize, usize) {
    let value_class = |v: Value| -> (u8, u64) {
        if renamable.contains(&v.raw()) {
            (1, 0)
        } else {
            (0, v.raw())
        }
    };
    let init = test.initial_memory().get(&addr).map_or((2u8, 0u64), |&v| value_class(v));
    let observed = test
        .observed()
        .iter()
        .any(|obs| matches!(obs, Observation::Memory(loc) if loc.address() == addr));
    let mut cond_values: Vec<u64> = test
        .condition()
        .iter()
        .filter(|(obs, _)| matches!(obs, Observation::Memory(loc) if loc.address() == addr))
        .map(|(_, &v)| {
            let (class, raw) = value_class(v);
            (u64::from(class) << 32) | raw.min(u64::from(u32::MAX))
        })
        .collect();
    cond_values.sort_unstable();
    let value_mentions = test.condition().iter().filter(|(_, &v)| v.raw() == addr).count();
    let init_value_mentions = test.initial_memory().values().filter(|v| v.raw() == addr).count();
    (init.0, init.1, observed, cond_values, value_mentions, init_value_mentions)
}

/// The canonical location pool: `a`–`z`, then `aa`, `ab`, …, skipping any
/// name whose hashed address collides with an earlier pool entry.
fn canonical_pool(count: usize) -> Vec<(String, u64)> {
    let mut pool = Vec::with_capacity(count);
    let mut used = BTreeSet::new();
    let mut index = 0usize;
    while pool.len() < count {
        let name = alpha_name(index);
        index += 1;
        let addr = Loc::new(&name).address();
        if used.insert(addr) {
            pool.push((name, addr));
        }
    }
    pool
}

/// `0 → "a"`, `25 → "z"`, `26 → "aa"`, `27 → "ab"`, … (bijective base 26).
fn alpha_name(mut index: usize) -> String {
    let mut bytes = Vec::new();
    loop {
        bytes.push(b'a' + (index % 26) as u8);
        index /= 26;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    bytes.reverse();
    String::from_utf8(bytes).expect("ascii")
}

/// All permutations of `0..n` in lexicographic order.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    let mut current: Vec<usize> = Vec::with_capacity(n);
    let mut remaining: Vec<usize> = (0..n).collect();
    permute_into(&mut current, &mut remaining, &mut out);
    out
}

fn permute_into(current: &mut Vec<usize>, remaining: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if remaining.is_empty() {
        out.push(current.clone());
        return;
    }
    for i in 0..remaining.len() {
        let picked = remaining.remove(i);
        current.push(picked);
        permute_into(current, remaining, out);
        current.pop();
        remaining.insert(i, picked);
    }
}

/// Deterministic thread order for programs too large to permute: sort by a
/// per-thread skeleton rendered with thread-local register numbering and
/// renamable addresses replaced by their thread-local first-use index.
fn skeleton_order(test: &LitmusTest, renamable: Option<&BTreeSet<u64>>) -> Vec<usize> {
    let empty = BTreeSet::new();
    let renamable = renamable.unwrap_or(&empty);
    let mut keyed: Vec<(String, usize)> = test
        .program()
        .threads()
        .iter()
        .enumerate()
        .map(|(t, thread)| (thread_skeleton(thread, renamable), t))
        .collect();
    keyed.sort();
    keyed.into_iter().map(|(_, t)| t).collect()
}

fn thread_skeleton(thread: &ThreadProgram, renamable: &BTreeSet<u64>) -> String {
    use std::fmt::Write as _;
    let mut regs = RegRenamer::new();
    let mut addrs: BTreeMap<u64, usize> = BTreeMap::new();
    let mut out = String::new();
    let operand = |operand: &Operand, regs: &mut RegRenamer, addrs: &mut BTreeMap<u64, usize>| {
        match operand {
            Operand::Reg(r) => regs.map(*r).to_string(),
            Operand::Imm(v) if renamable.contains(&v.raw()) => {
                let next = addrs.len();
                format!("A{}", *addrs.entry(v.raw()).or_insert(next))
            }
            Operand::Imm(v) => v.raw().to_string(),
        }
    };
    for instr in thread.instructions() {
        match instr {
            Instruction::Alu { dst, op, lhs, rhs } => {
                let lhs = operand(lhs, &mut regs, &mut addrs);
                let rhs = operand(rhs, &mut regs, &mut addrs);
                let _ = writeln!(out, "{} {lhs} {rhs} {}", op, regs.map(*dst));
            }
            Instruction::Load { dst, addr } => {
                let base = operand(&addr.base, &mut regs, &mut addrs);
                let _ = writeln!(out, "ld {base}+{} {}", addr.offset, regs.map(*dst));
            }
            Instruction::Store { addr, data } => {
                let base = operand(&addr.base, &mut regs, &mut addrs);
                let data = operand(data, &mut regs, &mut addrs);
                let _ = writeln!(out, "st {base}+{} {data}", addr.offset);
            }
            Instruction::Fence { kind } => {
                let _ = writeln!(out, "{kind}");
            }
            Instruction::Branch { cond, lhs, rhs, .. } => {
                let lhs = operand(lhs, &mut regs, &mut addrs);
                let rhs = operand(rhs, &mut regs, &mut addrs);
                let _ = writeln!(out, "{cond} {lhs} {rhs}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::library;

    #[test]
    fn library_tests_have_stable_distinct_hashes() {
        let tests = library::all_tests();
        let mut by_hash: BTreeMap<String, String> = BTreeMap::new();
        for test in &tests {
            let h = canonical_hash(test);
            assert_eq!(h, canonical_hash(test), "{}: hash is deterministic", test.name());
            // Equal hashes are only acceptable for byte-equal canonical
            // texts (a genuine dedup), never as a spurious collision.
            let text = canonical_text(test);
            if let Some(previous) = by_hash.insert(h.to_string(), text.clone()) {
                assert_eq!(previous, text, "{}: hash collision across distinct forms", test.name());
            }
        }
        assert!(by_hash.len() >= 25, "library collapses too far: {} forms", by_hash.len());
    }

    #[test]
    fn thread_permutation_is_collapsed() {
        // Dekker with its two (symmetric-but-for-names) threads swapped.
        let a = Loc::new("a");
        let b = Loc::new("b");
        let build = |swap: bool| {
            let mut t0 = ThreadProgram::builder(ProcId::new(0));
            let mut t1 = ThreadProgram::builder(ProcId::new(1));
            if swap {
                t0.store(Addr::loc(b), Operand::imm(1));
                t0.load(Reg::new(7), Addr::loc(a));
                t1.store(Addr::loc(a), Operand::imm(1));
                t1.load(Reg::new(3), Addr::loc(b));
            } else {
                t0.store(Addr::loc(a), Operand::imm(1));
                t0.load(Reg::new(3), Addr::loc(b));
                t1.store(Addr::loc(b), Operand::imm(1));
                t1.load(Reg::new(7), Addr::loc(a));
            }
            let (obs0, obs1) = if swap { (1, 0) } else { (0, 1) };
            let (r0, r1) = (Reg::new(3), Reg::new(7));
            LitmusTest::builder("dekker-variant", Program::new(vec![t0.build(), t1.build()]))
                .observe_reg(ProcId::new(obs0), r0)
                .observe_reg(ProcId::new(obs1), r1)
                .expect_reg(ProcId::new(obs0), r0, 0)
                .expect_reg(ProcId::new(obs1), r1, 0)
                .build()
        };
        assert_eq!(canonical_hash(&build(false)), canonical_hash(&build(true)));
    }

    #[test]
    fn register_and_location_renaming_is_collapsed() {
        let build = |x: &str, y: &str, r: u32| {
            let xl = Loc::new(x);
            let yl = Loc::new(y);
            let mut t0 = ThreadProgram::builder(ProcId::new(0));
            t0.store(Addr::loc(xl), Operand::imm(1));
            t0.store(Addr::loc(yl), Operand::imm(1));
            let mut t1 = ThreadProgram::builder(ProcId::new(1));
            t1.load(Reg::new(r), Addr::loc(yl));
            t1.load(Reg::new(r + 5), Addr::loc(xl));
            LitmusTest::builder("mp-variant", Program::new(vec![t0.build(), t1.build()]))
                .observe_reg(ProcId::new(1), Reg::new(r))
                .observe_reg(ProcId::new(1), Reg::new(r + 5))
                .expect_reg(ProcId::new(1), Reg::new(r), 1)
                .expect_reg(ProcId::new(1), Reg::new(r + 5), 0)
                .build()
        };
        let base = canonical_hash(&build("a", "b", 1));
        assert_eq!(base, canonical_hash(&build("flag", "data", 1)));
        assert_eq!(base, canonical_hash(&build("p", "q", 11)));
        // A different condition must hash apart.
        let other = {
            let t = build("a", "b", 1);
            let mut flipped = LitmusTest::builder("mp-other", t.program().clone());
            for &obs in t.observed() {
                flipped = flipped.observe(obs);
            }
            flipped = flipped.expect(t.observed()[0], 0).expect(t.observed()[1], 1);
            flipped.build()
        };
        assert_ne!(base, canonical_hash(&other));
    }

    #[test]
    fn canonical_text_parses_back_to_the_canonical_test() {
        for test in library::all_tests() {
            let form = canonical_form(&test);
            let reparsed = crate::parser::parse_litmus(&form.text)
                .unwrap_or_else(|e| panic!("{}: canonical text must parse: {e}", test.name()));
            assert_eq!(reparsed, form.test, "{}", test.name());
            // Canonicalization is idempotent.
            assert_eq!(canonical_text(&form.test), form.text, "{}", test.name());
        }
    }

    #[test]
    fn screen_bails_on_address_arithmetic() {
        // r2 = a + 1 dereferenced: renaming `a` would change which address
        // the +1 lands on, so the screen must refuse to rename.
        let a = Loc::new("a");
        let mut t0 = ThreadProgram::builder(ProcId::new(0));
        t0.alu(Reg::new(1), AluOp::Add, Operand::loc(a), Operand::imm(1));
        t0.store(Addr::loc(a), Operand::imm(1));
        let test = LitmusTest::builder("addr-arith", Program::new(vec![t0.build()]))
            .observe_mem(a)
            .build();
        assert_eq!(renamable_addresses(&test), None);
        // The canonical text then keeps the raw address.
        assert!(canonical_text(&test).contains(&a.address().to_string()));
    }

    #[test]
    fn artificial_dependency_idiom_is_renamed() {
        let build = |name: &str| {
            let loc = Loc::new(name);
            let mut t0 = ThreadProgram::builder(ProcId::new(0));
            t0.load(Reg::new(1), Addr::loc(loc));
            t0.artificial_addr_dep(Reg::new(2), loc, Reg::new(1));
            t0.load(Reg::new(3), Addr::reg(Reg::new(2)));
            LitmusTest::builder("dep", Program::new(vec![t0.build()]))
                .observe_reg(ProcId::new(0), Reg::new(3))
                .expect_reg(ProcId::new(0), Reg::new(3), 0)
                .build()
        };
        let form = canonical_form(&build("x"));
        assert_eq!(form.text, canonical_form(&build("lock")).text);
        // The renamed location prints as a dictionary name, not an integer.
        assert!(form.text.contains("[a]"), "renamed to `a`:\n{}", form.text);
    }

    #[test]
    fn alpha_names_are_bijective() {
        assert_eq!(alpha_name(0), "a");
        assert_eq!(alpha_name(25), "z");
        assert_eq!(alpha_name(26), "aa");
        assert_eq!(alpha_name(27), "ab");
        assert_eq!(alpha_name(26 + 26 * 26), "aaa");
        let names: BTreeSet<String> = (0..1000).map(alpha_name).collect();
        assert_eq!(names.len(), 1000);
    }
}
