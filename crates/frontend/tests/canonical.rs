//! Canonicalizer pins (the serve cache's correctness contract):
//!
//! * `canonical_hash` is invariant under thread permutation, per-thread
//!   register renaming and label renaming — always;
//! * it is additionally invariant under location (address) renaming
//!   whenever the soundness screen admits the rename (detectable from the
//!   canonical text: no raw address integers survive);
//! * distinct conditions / outcome sets hash apart — hash equality implies
//!   canonical-text equality across the whole library;
//! * canonicalization preserves the operational GAM verdict, the property
//!   the cache's correctness actually rests on.

use std::collections::BTreeMap;

use gam_engine::Engine;
use gam_frontend::{canonical_form, canonical_hash, canonical_test, canonical_text};
use gam_isa::litmus::{library, LitmusTest, Observation};
use gam_isa::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// renaming machinery
// ---------------------------------------------------------------------------

/// Fresh location names for the renaming image; double letters keep them
/// disjoint from every name the library or the generators use.
const FRESH_NAMES: [&str; 8] = ["kk", "ll", "mm", "nn", "oo", "pp", "qq", "rr"];

/// Maps every address-range constant of `test` onto fresh locations.
fn fresh_loc_map(test: &LitmusTest) -> BTreeMap<u64, u64> {
    let mut addrs = std::collections::BTreeSet::new();
    let mut see_operand = |op: &Operand| {
        if let Operand::Imm(v) = op {
            if v.raw() >= Loc::REGION_BASE {
                addrs.insert(v.raw());
            }
        }
    };
    for (_, _, instr) in test.program().iter_instructions() {
        match instr {
            Instruction::Alu { lhs, rhs, .. } | Instruction::Branch { lhs, rhs, .. } => {
                see_operand(lhs);
                see_operand(rhs);
            }
            Instruction::Load { addr, .. } => see_operand(&addr.base),
            Instruction::Store { addr, data } => {
                see_operand(&addr.base);
                see_operand(data);
            }
            Instruction::Fence { .. } => {}
        }
    }
    for (&key, &value) in test.initial_memory() {
        addrs.insert(key);
        if value.raw() >= Loc::REGION_BASE {
            addrs.insert(value.raw());
        }
    }
    for obs in test.observed() {
        if let Observation::Memory(loc) = obs {
            addrs.insert(loc.address());
        }
    }
    for (obs, value) in test.condition().iter() {
        if let Observation::Memory(loc) = obs {
            addrs.insert(loc.address());
        }
        if value.raw() >= Loc::REGION_BASE {
            addrs.insert(value.raw());
        }
    }
    assert!(addrs.len() <= FRESH_NAMES.len(), "not enough fresh names");
    let map: BTreeMap<u64, u64> =
        addrs.iter().zip(FRESH_NAMES).map(|(&old, name)| (old, Loc::new(name).address())).collect();
    map
}

/// Rebuilds `test` with threads permuted by `order`, registers renamed by
/// `reg_map`, labels suffixed, and addresses relocated by `loc_map`.
fn rename(
    test: &LitmusTest,
    loc_map: &BTreeMap<u64, u64>,
    reg_map: impl Fn(Reg) -> Reg + Copy,
    order: &[usize],
) -> LitmusTest {
    let map_value = |v: Value| -> Value { loc_map.get(&v.raw()).copied().map_or(v, Value::new) };
    let map_operand = |op: &Operand| -> Operand {
        match op {
            Operand::Imm(v) => Operand::Imm(map_value(*v)),
            Operand::Reg(r) => Operand::Reg(reg_map(*r)),
        }
    };
    let threads = test.program().threads();
    let mut new_pos = vec![0usize; threads.len()];
    for (pos, &old) in order.iter().enumerate() {
        new_pos[old] = pos;
    }
    let mut rebuilt = Vec::new();
    for (pos, &old) in order.iter().enumerate() {
        let thread = &threads[old];
        let mut builder = ThreadProgram::builder(ProcId::new(pos));
        for (i, instr) in thread.instructions().iter().enumerate() {
            for (name, &target) in thread.labels() {
                if target == i {
                    builder.label(format!("{name}q"));
                }
            }
            builder.push(match instr {
                Instruction::Alu { dst, op, lhs, rhs } => Instruction::Alu {
                    dst: reg_map(*dst),
                    op: *op,
                    lhs: map_operand(lhs),
                    rhs: map_operand(rhs),
                },
                Instruction::Load { dst, addr } => Instruction::Load {
                    dst: reg_map(*dst),
                    addr: Addr { base: map_operand(&addr.base), offset: addr.offset },
                },
                Instruction::Store { addr, data } => Instruction::Store {
                    addr: Addr { base: map_operand(&addr.base), offset: addr.offset },
                    data: map_operand(data),
                },
                Instruction::Fence { kind } => Instruction::Fence { kind: *kind },
                Instruction::Branch { cond, lhs, rhs, target } => Instruction::Branch {
                    cond: *cond,
                    lhs: map_operand(lhs),
                    rhs: map_operand(rhs),
                    target: Label::new(format!("{}q", target.name())),
                },
            });
        }
        for (name, &target) in thread.labels() {
            if target == thread.len() {
                builder.label(format!("{name}q"));
            }
        }
        rebuilt.push(builder.build());
    }
    let map_obs = |obs: &Observation| -> Observation {
        match obs {
            Observation::Register(proc, reg) => {
                Observation::Register(ProcId::new(new_pos[proc.index()]), reg_map(*reg))
            }
            Observation::Memory(loc) => Observation::Memory(Loc::from_address(
                loc_map.get(&loc.address()).copied().unwrap_or(loc.address()),
            )),
        }
    };
    let mut builder =
        LitmusTest::builder(format!("{}-renamed", test.name()), Program::new(rebuilt));
    for (&key, &value) in test.initial_memory() {
        let key = loc_map.get(&key).copied().unwrap_or(key);
        builder = builder.init(Loc::from_address(key), map_value(value));
    }
    for obs in test.observed() {
        builder = builder.observe(map_obs(obs));
    }
    for (obs, &value) in test.condition().iter() {
        builder = builder.expect(map_obs(obs), map_value(value));
    }
    builder.build()
}

fn reversed_order(n: usize) -> Vec<usize> {
    (0..n).rev().collect()
}

/// True when the location-renaming screen admitted the test: every address
/// was renamed onto the dictionary, so no raw address integer (≥ 9 digits)
/// survives in the canonical text.
fn fully_renamed(canonical: &str) -> bool {
    let mut digits = 0usize;
    for byte in canonical.bytes() {
        if byte.is_ascii_digit() {
            digits += 1;
            if digits >= 9 {
                return false;
            }
        } else {
            digits = 0;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// library invariance
// ---------------------------------------------------------------------------

#[test]
fn library_hash_is_invariant_under_thread_and_register_renaming() {
    for test in library::all_tests() {
        let base = canonical_hash(&test);
        let order = reversed_order(test.program().num_threads());
        let renamed = rename(&test, &BTreeMap::new(), |r| Reg::new(r.index() * 7 + 3), &order);
        assert_eq!(
            base,
            canonical_hash(&renamed),
            "{}: thread/register renaming changed the hash",
            test.name()
        );
    }
}

#[test]
fn library_hash_is_invariant_under_location_renaming_when_screened_in() {
    let mut screened_in = 0usize;
    let tests = library::all_tests();
    for test in &tests {
        if !fully_renamed(&canonical_text(test)) {
            continue; // the screen bailed; location names are kept as-is
        }
        screened_in += 1;
        let loc_map = fresh_loc_map(test);
        let order = reversed_order(test.program().num_threads());
        let renamed = rename(test, &loc_map, |r| Reg::new(r.index() + 11), &order);
        assert_eq!(
            canonical_hash(test),
            canonical_hash(&renamed),
            "{}: location renaming changed the hash",
            test.name()
        );
    }
    assert!(
        screened_in * 10 >= tests.len() * 8,
        "screen admits only {screened_in}/{} library tests",
        tests.len()
    );
}

#[test]
fn hash_equality_implies_canonical_text_equality_across_the_library() {
    let tests = library::all_tests();
    for (i, a) in tests.iter().enumerate() {
        for b in tests.iter().skip(i + 1) {
            if canonical_hash(a) == canonical_hash(b) {
                assert_eq!(
                    canonical_text(a),
                    canonical_text(b),
                    "{} vs {}: spurious hash collision",
                    a.name(),
                    b.name()
                );
            }
        }
    }
}

#[test]
fn different_conditions_hash_apart() {
    let test = library::mp();
    let mut flipped = LitmusTest::builder("mp-flipped", test.program().clone());
    for (&key, &value) in test.initial_memory() {
        flipped = flipped.init(Loc::from_address(key), value);
    }
    for &obs in test.observed() {
        flipped = flipped.observe(obs);
    }
    for (&obs, &value) in test.condition().iter() {
        // Invert every expected value: a different outcome of interest.
        flipped = flipped.expect(obs, u64::from(value.is_zero()));
    }
    let flipped = flipped.build();
    assert_ne!(test.condition(), flipped.condition());
    assert_ne!(canonical_hash(&test), canonical_hash(&flipped));
}

// ---------------------------------------------------------------------------
// verdict preservation
// ---------------------------------------------------------------------------

#[test]
fn canonicalization_preserves_the_operational_gam_verdict() {
    let engine = Engine::operational(gam_core::ModelKind::Gam).expect("gam supported");
    for test in library::all_tests().into_iter().take(12) {
        let canon = canonical_test(&test);
        let original = engine.check(&test).expect("original checks");
        let canonical = engine.check(&canon).expect("canonical checks");
        assert_eq!(original, canonical, "{}: canonicalization changed the verdict", test.name());
    }
}

// ---------------------------------------------------------------------------
// random programs
// ---------------------------------------------------------------------------

/// Deterministic xorshift, as in the round-trip suite.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A random straight-line litmus test over three locations: immediate and
/// address-valued stores, direct and register-indirect loads, `mov`s of
/// addresses, the artificial-dependency idiom, and fences — the full
/// vocabulary the renaming screen is designed to admit.
fn random_test(seed: u64) -> LitmusTest {
    let mut rng = XorShift(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let locations = [Loc::new("x"), Loc::new("y"), Loc::new("z")];
    let num_threads = 1 + rng.below(3) as usize;
    let mut threads = Vec::new();
    let mut written: Vec<(ProcId, Reg)> = Vec::new();
    for proc_index in 0..num_threads {
        let proc = ProcId::new(proc_index);
        let mut builder = ThreadProgram::builder(proc);
        let mut next_reg = 1u32;
        for _ in 0..1 + rng.below(4) {
            let loc = locations[rng.below(3) as usize];
            match rng.below(6) {
                0 => {
                    let data: Operand = match rng.below(2) {
                        0 => Operand::imm(rng.below(3)),
                        _ => Operand::loc(locations[rng.below(3) as usize]),
                    };
                    builder.store(Addr::loc(loc), data);
                }
                1 => {
                    let reg = Reg::new(next_reg);
                    next_reg += 1;
                    builder.load(reg, Addr::loc(loc));
                    written.push((proc, reg));
                }
                2 if next_reg > 1 => {
                    // Chase a previously loaded value as an address.
                    let pointer = Reg::new(1 + rng.below(u64::from(next_reg - 1)) as u32);
                    let reg = Reg::new(next_reg);
                    next_reg += 1;
                    builder.load(reg, Addr::reg(pointer));
                    written.push((proc, reg));
                }
                3 => {
                    let reg = Reg::new(next_reg);
                    next_reg += 1;
                    builder.mov(reg, Operand::loc(loc));
                    written.push((proc, reg));
                }
                4 if next_reg > 1 => {
                    // The paper's artificial address dependency.
                    let dep = Reg::new(1 + rng.below(u64::from(next_reg - 1)) as u32);
                    let reg = Reg::new(next_reg);
                    next_reg += 1;
                    builder.artificial_addr_dep(reg, loc, dep);
                    written.push((proc, reg));
                }
                _ => {
                    builder.fence(FenceKind::ALL[rng.below(4) as usize]);
                }
            }
        }
        threads.push(builder.build());
    }
    let program = Program::new(threads);
    let mut builder = LitmusTest::builder(format!("canon-random-{seed}"), program);
    if rng.below(2) == 0 {
        builder = builder.init(locations[0], rng.below(3));
    }
    if rng.below(2) == 0 {
        builder = builder.init(locations[1], locations[2].value());
    }
    builder = builder.observe_mem(locations[rng.below(3) as usize]);
    for (proc, reg) in written {
        builder = match rng.below(3) {
            0 => builder.observe_reg(proc, reg),
            1 => builder.expect_reg(proc, reg, rng.below(3)),
            _ => builder.expect_reg(proc, reg, locations[rng.below(3) as usize].value()),
        };
    }
    builder.try_build().expect("observed registers are written")
}

fn assert_invariant(seed: u64) {
    let test = random_test(seed);
    let base = canonical_hash(&test);
    let order = reversed_order(test.program().num_threads());
    // Thread + register renaming: always invariant.
    let renamed = rename(&test, &BTreeMap::new(), |r| Reg::new(r.index() * 3 + 2), &order);
    assert_eq!(base, canonical_hash(&renamed), "seed {seed}: thread/register renaming");
    // Location renaming: invariant whenever the screen admitted the test.
    if fully_renamed(&canonical_form(&test).text) {
        let loc_map = fresh_loc_map(&test);
        let relocated = rename(&test, &loc_map, |r| Reg::new(r.index() + 5), &order);
        assert_eq!(base, canonical_hash(&relocated), "seed {seed}: location renaming");
    }
}

#[test]
fn random_programs_hash_invariantly() {
    let mut admitted = 0usize;
    for seed in 0..200u64 {
        assert_invariant(seed);
        if fully_renamed(&canonical_text(&random_test(seed))) {
            admitted += 1;
        }
    }
    // The generator stays inside the screen's vocabulary, so the location
    // rename must be admitted for the overwhelming majority of programs.
    assert!(admitted >= 150, "screen admits only {admitted}/200 random programs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_hash_invariantly_property(seed in 1000u64..100_000) {
        assert_invariant(seed);
    }
}
