//! The frontend's correctness pins:
//!
//! * round-trip — `parse(print(t)) == Ok(t)` for every library test and for
//!   randomly generated programs covering loads, stores, ALU ops, branches,
//!   labels, all four fences, initial memory and conditions;
//! * canonical idempotence — `print(parse(print(t))) == print(t)`;
//! * precise error positions — bad labels, duplicate locations and
//!   malformed conditions report the exact line/column;
//! * corpus export/load — `export_library` followed by `Corpus::load`
//!   reproduces the in-code library and its expectation table.

use gam_frontend::{export_library, parse_litmus, print_litmus, Corpus};
use gam_isa::litmus::{library, LitmusTest};
use gam_isa::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// round-trip: the library
// ---------------------------------------------------------------------------

#[test]
fn every_library_test_round_trips() {
    for test in library::all_tests() {
        let text = print_litmus(&test);
        let parsed = parse_litmus(&text).unwrap_or_else(|err| {
            panic!("{}: printed text fails to parse: {err}\n{text}", test.name())
        });
        assert_eq!(parsed, test, "{}: round-trip changed the test\n{text}", test.name());
    }
}

#[test]
fn printing_is_idempotent_on_the_library() {
    for test in library::all_tests() {
        let once = print_litmus(&test);
        let twice = print_litmus(&parse_litmus(&once).expect("parses"));
        assert_eq!(once, twice, "{}: canonical text is not a fixed point", test.name());
    }
}

// ---------------------------------------------------------------------------
// round-trip: random programs
// ---------------------------------------------------------------------------

/// Deterministic xorshift, as used by the cross-checker fuzz suite.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Generates a random litmus test exercising every instruction class the
/// format supports: loads and stores (direct, register-indirect and offset
/// addressing), all six ALU operations, all four fences, forward branches
/// with labels, initial memory, and a condition mixing integer and
/// location-address values.
fn random_test(seed: u64) -> LitmusTest {
    let mut rng = XorShift(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let locations = [Loc::new("x"), Loc::new("y"), Loc::new("z")];
    let num_threads = 1 + rng.below(3) as usize;
    let mut threads = Vec::new();
    let mut written: Vec<(ProcId, Reg)> = Vec::new();
    for proc_index in 0..num_threads {
        let proc = ProcId::new(proc_index);
        let mut builder = ThreadProgram::builder(proc);
        let mut next_reg = 1u32;
        for _ in 0..1 + rng.below(4) {
            let loc = locations[rng.below(3) as usize];
            match rng.below(6) {
                0 => {
                    let data: Operand = match rng.below(3) {
                        0 => Operand::imm(rng.below(3)),
                        1 => Operand::loc(locations[rng.below(3) as usize]),
                        _ => Operand::reg(Reg::new(1 + rng.below(3) as u32)),
                    };
                    builder.store(Addr::loc(loc), data);
                }
                1 => {
                    let reg = Reg::new(next_reg);
                    next_reg += 1;
                    let addr = match rng.below(3) {
                        0 => Addr::loc(loc),
                        1 => Addr::reg(Reg::new(1 + rng.below(3) as u32)),
                        _ => Addr::reg_offset(Reg::new(1 + rng.below(3) as u32), 8 * rng.below(3)),
                    };
                    builder.load(reg, addr);
                    written.push((proc, reg));
                }
                2 => {
                    let reg = Reg::new(next_reg);
                    next_reg += 1;
                    let op =
                        [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Mov]
                            [rng.below(6) as usize];
                    builder.alu(reg, op, Operand::loc(loc), Operand::imm(rng.below(5)));
                    written.push((proc, reg));
                }
                3 => {
                    let kind = FenceKind::ALL[rng.below(4) as usize];
                    builder.fence(kind);
                }
                4 => {
                    // A forward branch to the end-of-thread label.
                    let cond = if rng.below(2) == 0 { BranchCond::Eq } else { BranchCond::Ne };
                    builder.branch(cond, Operand::reg(Reg::new(1)), Operand::imm(0), "end");
                }
                _ => {
                    builder.store(Addr::reg(Reg::new(1 + rng.below(3) as u32)), Operand::imm(1));
                }
            }
        }
        threads.push(builder);
    }
    // Every thread defines the `end` label its branches may target.
    let mut finished = Vec::new();
    for mut builder in threads {
        builder.label("end");
        finished.push(builder.build());
    }
    let program = Program::new(finished);
    let mut builder = LitmusTest::builder(format!("random-{seed}"), program)
        .description(format!("randomly generated round-trip program, seed {seed}"));
    if rng.below(2) == 0 {
        builder = builder.init(locations[0], rng.below(3));
    }
    if rng.below(2) == 0 {
        builder = builder.init(locations[1], locations[2].value());
    }
    builder = builder.observe_mem(locations[0]);
    for (proc, reg) in written {
        builder = match rng.below(3) {
            0 => builder.observe_reg(proc, reg),
            1 => builder.expect_reg(proc, reg, rng.below(3)),
            _ => builder.expect_reg(proc, reg, locations[rng.below(3) as usize].value()),
        };
    }
    builder.try_build().expect("generated observations are all written registers")
}

#[test]
fn random_programs_round_trip() {
    for seed in 0..300u64 {
        let test = random_test(seed);
        let text = print_litmus(&test);
        let parsed = parse_litmus(&text).unwrap_or_else(|err| {
            panic!("seed {seed}: printed text fails to parse: {err}\n{text}")
        });
        assert_eq!(parsed, test, "seed {seed}: round-trip changed the test\n{text}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_round_trip_property(seed in 1000u64..100_000) {
        let test = random_test(seed);
        let text = print_litmus(&test);
        let parsed = parse_litmus(&text).expect("printed text parses");
        prop_assert_eq!(parsed, test);
    }
}

// ---------------------------------------------------------------------------
// structural edge cases
// ---------------------------------------------------------------------------

#[test]
fn empty_threads_and_empty_condition_round_trip() {
    let mut p1 = ThreadProgram::builder(ProcId::new(0));
    p1.load(Reg::new(1), Addr::loc(Loc::new("a")));
    let p2 = ThreadProgram::builder(ProcId::new(1)).build();
    let test = LitmusTest::builder("edge", Program::new(vec![p1.build(), p2]))
        .observe_mem(Loc::new("a"))
        .build();
    assert!(test.condition().is_empty());
    let text = print_litmus(&test);
    assert_eq!(parse_litmus(&text).unwrap(), test);
}

#[test]
fn unknown_location_addresses_print_as_integers_and_round_trip() {
    let odd = Loc::from_address(0xdead_beef);
    let mut p1 = ThreadProgram::builder(ProcId::new(0));
    p1.store(Addr::loc(odd), Operand::imm(1)).load(Reg::new(1), Addr::loc(odd));
    let test = LitmusTest::builder("odd-address", Program::new(vec![p1.build()]))
        .init(odd, 7u64)
        .expect_reg(ProcId::new(0), Reg::new(1), 7u64)
        .observe_mem(odd)
        .build();
    let text = print_litmus(&test);
    assert!(text.contains("3735928559"), "raw address must print as an integer:\n{text}");
    assert_eq!(parse_litmus(&text).unwrap(), test);
}

#[test]
fn hand_written_format_flexibility() {
    // Comments, blank lines, hex literals, `forbidden`, no locations clause,
    // multi-line init block, uneven whitespace.
    let text = "\
// a hand-written file
GAM handmade

\"with a \\\"quoted\\\" description\"
{
  a = 0x10;
  b = 3;
}
P1 | P2 ;
St [a] 1 | r1 = Ld [b + 8] ; // trailing comment
FenceSS |  ;
St [b] 2 | r2 = mov r1, 0 ;
forbidden (P2:r1 = 1 /\\ P2:r2 = 1 /\\ a = 16)
";
    let test = parse_litmus(text).expect("flexible syntax parses");
    assert_eq!(test.name(), "handmade");
    assert_eq!(test.description(), "with a \"quoted\" description");
    assert_eq!(test.initial_value(Loc::new("a").address()), Value::new(16));
    assert_eq!(test.program().num_threads(), 2);
    assert_eq!(test.program().threads()[0].len(), 3);
    assert_eq!(test.program().threads()[1].len(), 2);
    assert_eq!(test.condition().len(), 3);
    // The parsed test round-trips through the canonical printer too.
    let canonical = print_litmus(&test);
    assert_eq!(parse_litmus(&canonical).unwrap(), test);
}

#[test]
fn labels_and_branches_round_trip() {
    let mut p1 = ThreadProgram::builder(ProcId::new(0));
    p1.label("top")
        .load(Reg::new(1), Addr::loc(Loc::new("a")))
        .branch(BranchCond::Eq, Operand::reg(Reg::new(1)), Operand::imm(0), "top")
        .branch(BranchCond::Ne, Operand::reg(Reg::new(1)), Operand::imm(5), "done")
        .store(Addr::loc(Loc::new("b")), Operand::imm(1))
        .label("done");
    let test = LitmusTest::builder("branchy", Program::new(vec![p1.build()]))
        .expect_reg(ProcId::new(0), Reg::new(1), 0u64)
        .build();
    let text = print_litmus(&test);
    assert!(text.contains("top: r1 = Ld"));
    assert!(text.contains("-> done"));
    assert_eq!(parse_litmus(&text).unwrap(), test);
}

// ---------------------------------------------------------------------------
// parser error paths: exact positions
// ---------------------------------------------------------------------------

/// Asserts that `text` fails to parse at `line:col` with `needle` in the
/// message.
fn assert_error(text: &str, line: usize, col: usize, needle: &str) {
    let err = parse_litmus(text).unwrap_err();
    assert!(
        err.message.contains(needle),
        "expected `{needle}` in error, got `{err}`\ninput:\n{text}"
    );
    assert_eq!(
        (err.span.line, err.span.col),
        (line, col),
        "wrong position for `{err}`\ninput:\n{text}"
    );
}

#[test]
fn bad_label_errors_carry_positions() {
    // Branch to an undefined label.
    assert_error(
        "GAM t\nP1 ;\nbeq r1, 0 -> nowhere ;\n",
        3,
        14,
        "branch target `nowhere` is not defined in thread P1",
    );
    // Duplicate label definition.
    assert_error(
        "GAM t\nP1 ;\nloop: St [a] 1 ;\nloop: St [a] 2 ;\n",
        4,
        1,
        "label `loop` defined more than once",
    );
    // Reserved word as a label.
    assert_error("GAM t\nP1 ;\nSt: St [a] 1 ;\n", 3, 1, "reserved word");
}

#[test]
fn duplicate_location_errors_carry_positions() {
    assert_error("GAM t\n{ a = 1; a = 2; }\nP1 ;\nSt [a] 1 ;\n", 2, 10, "initialised twice");
    // The same location under two spellings (name and raw address).
    let addr = Loc::new("a").address();
    let text = format!("GAM t\n{{ a = 1; {addr} = 2; }}\nP1 ;\nSt [a] 1 ;\n");
    assert_error(&text, 2, 10, "initialised twice");
}

#[test]
fn malformed_condition_errors_carry_positions() {
    // Missing value.
    assert_error("GAM t\nP1 ;\nr1 = Ld [a] ;\nexists (P1:r1 = )\n", 4, 17, "expected a value");
    // `&&` instead of `/\` dies in the lexer with a position.
    assert_error(
        "GAM t\nP1 ;\nr1 = Ld [a] ;\nexists (P1:r1 = 0 && P1:r1 = 1)\n",
        4,
        19,
        "unexpected character",
    );
    // A stray token instead of `/\` between terms.
    assert_error(
        "GAM t\nP1 ;\nr1 = Ld [a] ;\nexists (P1:r1 = 0 P1:r1 = 1)\n",
        4,
        19,
        "to close the condition",
    );
    // Observation of a processor that does not exist.
    assert_error("GAM t\nP1 ;\nr1 = Ld [a] ;\nexists (P4:r1 = 0)\n", 4, 9, "does not exist");
    // The same observation constrained twice.
    assert_error(
        "GAM t\nP1 ;\nr1 = Ld [a] ;\nexists (P1:r1 = 0 /\\ P1:r1 = 1)\n",
        4,
        22,
        "constrained twice",
    );
    // Observing a register the thread never writes.
    assert_error(
        "GAM t\nP1 ;\nSt [a] 1 ;\nexists (P1:r7 = 0)\n",
        4,
        9,
        "never written by thread P1",
    );
}

#[test]
fn structural_errors_carry_positions() {
    // Row with too few columns.
    assert_error("GAM t\nP1 | P2 ;\nSt [a] 1 ;\n", 3, 10, "row ends after 1 of 2");
    // Unterminated header row.
    assert_error("GAM t\nP1 | P2\nSt [a] 1 | St [b] 1 ;\n", 3, 1, "thread header row");
    // Thread columns out of order.
    assert_error("GAM t\nP2 | P1 ;\n", 2, 1, "must be named P1, P2");
    // Garbage instruction.
    assert_error("GAM t\nP1 ;\nfoo bar ;\n", 3, 1, "expected an instruction");
    // Missing name in the header.
    assert_error("GAM\nP1 ;\nSt [a] 1 ;\n", 1, 1, "header must be");
    // Trailing garbage after the condition.
    assert_error("GAM t\nP1 ;\nr1 = Ld [a] ;\nexists (P1:r1 = 0)\njunk\n", 5, 1, "unexpected");
}

// ---------------------------------------------------------------------------
// corpus export / load
// ---------------------------------------------------------------------------

#[test]
fn expectation_coverage_gaps_are_reported() {
    let dir = std::env::temp_dir().join(format!("gam-frontend-coverage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    export_library(&dir).expect("export succeeds");
    // A fully covered corpus has no gaps.
    assert!(Corpus::load(&dir).unwrap().expectation_coverage_gaps().is_empty());
    // Removing a test file leaves its expectations row dangling; adding a
    // test without a row leaves its verdicts unchecked.
    std::fs::remove_file(dir.join("oota.litmus")).expect("remove");
    let extra = LitmusTest::builder("zz-extra", {
        let mut p1 = ThreadProgram::builder(ProcId::new(0));
        p1.load(Reg::new(1), Addr::loc(Loc::new("a")));
        Program::new(vec![p1.build()])
    })
    .expect_reg(ProcId::new(0), Reg::new(1), 0u64)
    .build();
    std::fs::write(dir.join("zz-extra.litmus"), print_litmus(&extra)).expect("write");
    let gaps = Corpus::load(&dir).unwrap().expectation_coverage_gaps();
    assert_eq!(gaps.len(), 2, "{gaps:?}");
    assert!(gaps.iter().any(|g| g.contains("zz-extra") && g.contains("no expectations row")));
    assert!(gaps.iter().any(|g| g.contains("oota") && g.contains("names no test")));
    // A corpus that carries no expectations file opts out entirely.
    std::fs::remove_file(dir.join("expectations.txt")).expect("remove");
    assert!(Corpus::load(&dir).unwrap().expectation_coverage_gaps().is_empty());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn exported_library_corpus_loads_back_identically() {
    let dir = std::env::temp_dir().join(format!("gam-frontend-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let written = export_library(&dir).expect("export succeeds");
    // 29 tests + expectations.txt.
    assert_eq!(written.len(), library::all_tests().len() + 1);
    let corpus = Corpus::load(&dir).expect("exported corpus loads");
    assert_eq!(corpus.tests.len(), library::all_tests().len());
    for expected in library::all_tests() {
        let loaded = corpus
            .tests
            .iter()
            .find(|t| t.test.name() == expected.name())
            .unwrap_or_else(|| panic!("{} missing from the corpus", expected.name()));
        assert_eq!(loaded.test, expected, "{} changed through the corpus", expected.name());
        let expectation = corpus
            .expectation_for(expected.name())
            .unwrap_or_else(|| panic!("{} has no expectation row", expected.name()));
        let reference = gam_verify::expectations::expectation_for(expected.name()).unwrap();
        for model in gam_core::ModelKind::ALL {
            assert_eq!(expectation.allowed(model), reference.allowed(model));
        }
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
