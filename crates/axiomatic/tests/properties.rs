//! Property-based tests of the axiomatic checker on randomly generated
//! branch-free litmus tests: model-strength inclusion, witness soundness,
//! basic sanity of the outcome sets, and differential equivalence of the
//! optimised pipeline (address-pruned read-from enumeration + incremental
//! memory-order pruning) against the naive reference implementation.

use gam_axiomatic::AxiomaticChecker;
use gam_core::model;
use gam_isa::litmus::LitmusTest;
use gam_isa::prelude::*;
use proptest::prelude::*;

/// One randomly chosen straight-line instruction acting on two locations.
#[derive(Debug, Clone)]
enum Step {
    Store {
        loc: u8,
        value: u8,
    },
    /// Stores the *address* of a location, so register-indirect loads can
    /// chase it (exercises the value-set address analysis).
    StoreLoc {
        loc: u8,
        target: u8,
    },
    Load {
        loc: u8,
    },
    /// A load followed by a load through the first load's result — a real
    /// address dependency whose target address is only known dynamically.
    LoadDep {
        loc: u8,
    },
    Fence {
        kind: u8,
    },
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..2, 1u8..3).prop_map(|(loc, value)| Step::Store { loc, value }),
        (0u8..2).prop_map(|loc| Step::Load { loc }),
        (0u8..4).prop_map(|kind| Step::Fence { kind }),
    ]
}

/// Like [`step`], additionally generating address-storing stores and
/// dependent loads.
fn dependent_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..2, 1u8..3).prop_map(|(loc, value)| Step::Store { loc, value }),
        (0u8..2, 0u8..2).prop_map(|(loc, target)| Step::StoreLoc { loc, target }),
        (0u8..2).prop_map(|loc| Step::Load { loc }),
        (0u8..2).prop_map(|loc| Step::LoadDep { loc }),
        (0u8..4).prop_map(|kind| Step::Fence { kind }),
    ]
}

fn build_test(threads: Vec<Vec<Step>>) -> LitmusTest {
    let locations = [Loc::new("px"), Loc::new("py")];
    let fences = [FenceKind::LL, FenceKind::LS, FenceKind::SL, FenceKind::SS];
    let mut programs = Vec::new();
    let mut observed = Vec::new();
    for (proc_index, steps) in threads.iter().enumerate() {
        let proc = ProcId::new(proc_index);
        let mut builder = ThreadProgram::builder(proc);
        let mut next_reg = 1u32;
        for step in steps {
            match step {
                Step::Store { loc, value } => {
                    builder.store(
                        Addr::loc(locations[*loc as usize]),
                        Operand::imm(u64::from(*value)),
                    );
                }
                Step::StoreLoc { loc, target } => {
                    builder.store(
                        Addr::loc(locations[*loc as usize]),
                        Operand::loc(locations[*target as usize]),
                    );
                }
                Step::Load { loc } => {
                    let reg = Reg::new(next_reg);
                    next_reg += 1;
                    builder.load(reg, Addr::loc(locations[*loc as usize]));
                    observed.push((proc, reg));
                }
                Step::LoadDep { loc } => {
                    let pointer = Reg::new(next_reg);
                    let value = Reg::new(next_reg + 1);
                    next_reg += 2;
                    builder.load(pointer, Addr::loc(locations[*loc as usize]));
                    builder.load(value, Addr::reg(pointer));
                    observed.push((proc, pointer));
                    observed.push((proc, value));
                }
                Step::Fence { kind } => {
                    builder.fence(fences[*kind as usize]);
                }
            }
        }
        programs.push(builder.build());
    }
    let program = Program::new(programs);
    let mut builder = LitmusTest::builder("proptest", program)
        .observe_mem(locations[0])
        .observe_mem(locations[1]);
    for (proc, reg) in observed {
        builder = builder.observe_reg(proc, reg);
    }
    builder.build()
}

fn two_threads() -> impl Strategy<Value = LitmusTest> {
    (proptest::collection::vec(step(), 1..4), proptest::collection::vec(step(), 1..4))
        .prop_map(|(a, b)| build_test(vec![a, b]))
}

/// Small programs (the reference pipeline is exponential) with dependent
/// addresses mixed in.
fn two_small_dependent_threads() -> impl Strategy<Value = LitmusTest> {
    (
        proptest::collection::vec(dependent_step(), 1..3),
        proptest::collection::vec(dependent_step(), 1..3),
    )
        .prop_map(|(a, b)| build_test(vec![a, b]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Outcome-set inclusion along the strength order SC ⊆ TSO ⊆ GAM ⊆ GAM-ARM ⊆ GAM0,
    /// and non-emptiness: every model admits at least one execution of every program.
    #[test]
    fn model_strength_inclusion(test in two_threads()) {
        let sc = AxiomaticChecker::new(model::sc()).allowed_outcomes(&test).unwrap();
        let tso = AxiomaticChecker::new(model::tso()).allowed_outcomes(&test).unwrap();
        let gam = AxiomaticChecker::new(model::gam()).allowed_outcomes(&test).unwrap();
        let arm = AxiomaticChecker::new(model::gam_arm()).allowed_outcomes(&test).unwrap();
        let gam0 = AxiomaticChecker::new(model::gam0()).allowed_outcomes(&test).unwrap();
        prop_assert!(!sc.is_empty());
        prop_assert!(sc.is_subset(&tso));
        prop_assert!(tso.is_subset(&gam));
        prop_assert!(gam.is_subset(&arm));
        prop_assert!(arm.is_subset(&gam0));
    }

    /// A witness returned for the condition of interest really matches it and
    /// is itself a member of the allowed-outcome set.
    #[test]
    fn witnesses_are_sound(test in two_threads(), target_value in 0u64..3) {
        // Re-target the condition at an arbitrary observed register value so
        // the search has something non-trivial to do.
        let observed_reg = test
            .observed()
            .iter()
            .find_map(|obs| match obs {
                gam_isa::litmus::Observation::Register(p, r) => Some((*p, *r)),
                gam_isa::litmus::Observation::Memory(_) => None,
            });
        prop_assume!(observed_reg.is_some());
        let (proc, reg) = observed_reg.unwrap();
        let retargeted = LitmusTest::builder("retargeted", test.program().clone())
            .expect_reg(proc, reg, target_value)
            .build();
        let checker = AxiomaticChecker::new(model::gam());
        let witness = checker.find_witness(&retargeted).unwrap();
        let outcomes = checker.allowed_outcomes(&retargeted).unwrap();
        match witness {
            Some(w) => {
                prop_assert!(retargeted.condition().matched_by(&w.outcome));
                prop_assert!(outcomes.contains(&w.outcome));
            }
            None => {
                prop_assert!(!outcomes.iter().any(|o| retargeted.condition().matched_by(o)));
            }
        }
    }

    /// The optimised pipeline (address-pruned read-from enumeration,
    /// incremental memory-order pruning, scratch reuse) must produce exactly
    /// the outcome sets of the naive reference implementation (full
    /// `(stores+1)^loads` enumeration, complete-order-only validation), for
    /// every model — including programs with dynamically computed addresses,
    /// which stress the value-set analysis behind the pruning.
    #[test]
    fn optimised_pipeline_matches_reference(test in two_small_dependent_threads()) {
        for spec in model::all() {
            let checker = AxiomaticChecker::new(spec.clone());
            let fast = checker.allowed_outcomes(&test).unwrap();
            let reference = checker.allowed_outcomes_reference(&test).unwrap();
            prop_assert_eq!(
                &fast,
                &reference,
                "{}: optimised and reference outcome sets differ",
                spec.name()
            );
        }
    }

    /// Loads only ever observe values that some store in the program (or the
    /// initial state) wrote — no out-of-thin-air values, for any model.
    #[test]
    fn no_out_of_thin_air_values(test in two_threads()) {
        let mut writable: Vec<Value> = vec![Value::ZERO];
        for (_, _, instr) in test.program().iter_instructions() {
            if let gam_isa::Instruction::Store { data: Operand::Imm(v), .. } = instr {
                writable.push(*v);
            }
        }
        for spec in model::all() {
            let outcomes = AxiomaticChecker::new(spec.clone()).allowed_outcomes(&test).unwrap();
            for outcome in &outcomes {
                for (_, value) in outcome.iter() {
                    prop_assert!(
                        writable.contains(value),
                        "{}: value {value} appeared from nowhere",
                        spec.name()
                    );
                }
            }
        }
    }
}
