//! Read-from assignment enumeration utilities.
//!
//! The checker enumerates, for every load, a read-from candidate: the initial
//! memory value or one of the program's stores. This module provides the
//! enumeration as a reusable iterator so that tests, examples and the
//! verification crate can inspect the raw assignment space.

use crate::execution::{ProgramIndex, RfCandidate};

/// An iterator over every read-from assignment of a program.
///
/// Each item assigns one [`RfCandidate`] to each load of the indexed program,
/// in the order of [`ProgramIndex::loads`]. The number of assignments is
/// `(stores + 1) ^ loads`; address consistency is *not* checked here (that is
/// the job of value propagation).
#[derive(Debug, Clone)]
pub struct RfAssignments {
    num_loads: usize,
    options: usize,
    counter: Option<Vec<usize>>,
}

impl RfAssignments {
    /// Creates the assignment enumeration for an indexed program.
    #[must_use]
    pub fn new(index: &ProgramIndex) -> Self {
        RfAssignments {
            num_loads: index.loads.len(),
            options: index.stores.len() + 1,
            counter: Some(vec![0; index.loads.len()]),
        }
    }

    /// Total number of assignments that will be produced.
    #[must_use]
    pub fn total(&self) -> usize {
        self.options.pow(self.num_loads as u32)
    }
}

impl Iterator for RfAssignments {
    type Item = Vec<RfCandidate>;

    fn next(&mut self) -> Option<Self::Item> {
        let counter = self.counter.as_mut()?;
        let assignment = counter
            .iter()
            .map(|&c| if c == 0 { RfCandidate::Init } else { RfCandidate::Store(c - 1) })
            .collect();
        // Advance the mixed-radix counter; drop it when it wraps around.
        let mut digit = 0;
        loop {
            if digit == counter.len() {
                self.counter = None;
                break;
            }
            counter[digit] += 1;
            if counter[digit] < self.options {
                break;
            }
            counter[digit] = 0;
            digit += 1;
        }
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::library;

    #[test]
    fn dekker_has_nine_assignments() {
        let index = ProgramIndex::new(library::dekker().program());
        let assignments = RfAssignments::new(&index);
        assert_eq!(assignments.total(), 9);
        let all: Vec<_> = assignments.collect();
        assert_eq!(all.len(), 9);
        // Every assignment has one candidate per load.
        assert!(all.iter().all(|a| a.len() == 2));
        // The first assignment is all-Init.
        assert_eq!(all[0], vec![RfCandidate::Init, RfCandidate::Init]);
        // All assignments are distinct.
        let unique: std::collections::BTreeSet<String> =
            all.iter().map(|a| format!("{a:?}")).collect();
        assert_eq!(unique.len(), 9);
    }

    #[test]
    fn store_only_program_has_one_empty_assignment() {
        let index = ProgramIndex::new(library::two_plus_two_w().program());
        let assignments: Vec<_> = RfAssignments::new(&index).collect();
        assert_eq!(assignments.len(), 1);
        assert!(assignments[0].is_empty());
    }

    #[test]
    fn rsw_assignment_count_matches_formula() {
        let index = ProgramIndex::new(library::rsw().program());
        let assignments = RfAssignments::new(&index);
        assert_eq!(assignments.total(), (index.stores.len() + 1).pow(index.loads.len() as u32));
        assert_eq!(assignments.count(), (index.stores.len() + 1).pow(index.loads.len() as u32));
    }
}
