//! Read-from assignment enumeration utilities.
//!
//! The checker enumerates, for every load, a read-from candidate: the initial
//! memory value or one of the program's stores. This module provides the
//! enumeration as a reusable iterator so that tests, examples and the
//! verification crate can inspect the raw assignment space.
//!
//! Two enumeration strategies exist. [`RfAssignments::new`] produces the
//! naive full space of `(stores + 1) ^ loads` assignments and serves as the
//! reference oracle. [`RfAssignments::address_pruned`] first runs a static
//! value-set dataflow pass over the program ([`StaticAddrs`]): every register
//! is mapped to the set of values it can possibly hold across *all* read-from
//! choices, which resolves memory addresses (exactly or to a small candidate
//! set) before any enumeration happens. A load then only pairs with `Init`
//! and with stores whose possible addresses intersect the load's — every
//! skipped pair is one that [`crate::propagate::concretize`] or the
//! memory-order search would have rejected anyway, so the pruned space yields
//! exactly the same consistent executions while being orders of magnitude
//! smaller on real litmus tests.

use std::collections::BTreeSet;

use gam_isa::litmus::LitmusTest;
use gam_isa::{Instruction, Operand, Program, Reg};

use crate::execution::{InstrRef, ProgramIndex, RfCandidate};

/// An iterator over read-from assignments of a program.
///
/// Each item assigns one [`RfCandidate`] to each load of the indexed program,
/// in the order of [`ProgramIndex::loads`].
#[derive(Debug, Clone)]
pub struct RfAssignments {
    /// Per-load candidate lists; the mixed-radix counter walks these.
    candidates: Vec<Vec<RfCandidate>>,
    /// Size of the unpruned space: `(stores + 1) ^ loads`, saturated.
    naive_total: u128,
    counter: Option<Vec<usize>>,
}

impl RfAssignments {
    /// Creates the naive assignment enumeration for an indexed program: every
    /// load pairs with `Init` and with every store, regardless of addresses.
    /// This is the reference oracle; prefer [`RfAssignments::address_pruned`]
    /// for checking.
    #[must_use]
    pub fn new(index: &ProgramIndex) -> Self {
        let all: Vec<RfCandidate> = std::iter::once(RfCandidate::Init)
            .chain((0..index.stores.len()).map(RfCandidate::Store))
            .collect();
        Self::from_candidates(index, vec![all; index.loads.len()])
    }

    /// Creates the address-pruned assignment enumeration. Two sound,
    /// model-independent rules shrink each load's candidate list:
    ///
    /// 1. *Address pruning* — a store is skipped when the value-set analysis
    ///    proves its address can never equal the load's (the sets of possible
    ///    addresses are disjoint); value propagation would reject the pairing
    ///    on every enumeration path.
    /// 2. *Local causality* — a store that is program-order-*younger* than
    ///    the load in the same thread is skipped: constraint SAMemSt orders
    ///    any memory access before a same-address younger store in every
    ///    model, so such a pairing either fails address consistency or forms
    ///    a `ppo`/`rf` cycle the memory-order search can never satisfy.
    #[must_use]
    pub fn address_pruned(test: &LitmusTest, index: &ProgramIndex) -> Self {
        let addrs = StaticAddrs::analyze(test);
        let candidates = index
            .loads
            .iter()
            .map(|&load_ref| {
                std::iter::once(RfCandidate::Init)
                    .chain(index.stores.iter().enumerate().filter_map(|(sid, &store_ref)| {
                        if store_ref.proc == load_ref.proc && store_ref.idx > load_ref.idx {
                            return None;
                        }
                        if addrs.may_alias(load_ref, store_ref) {
                            Some(RfCandidate::Store(sid))
                        } else {
                            None
                        }
                    }))
                    .collect()
            })
            .collect();
        Self::from_candidates(index, candidates)
    }

    fn from_candidates(index: &ProgramIndex, candidates: Vec<Vec<RfCandidate>>) -> Self {
        let options = index.stores.len() as u128 + 1;
        let naive_total = options
            .checked_pow(u32::try_from(index.loads.len()).unwrap_or(u32::MAX))
            .unwrap_or(u128::MAX);
        let counter = Some(vec![0; candidates.len()]);
        RfAssignments { candidates, naive_total, counter }
    }

    /// Total number of assignments this enumeration will produce. Saturates
    /// at `u128::MAX` instead of silently overflowing on large programs.
    #[must_use]
    pub fn total(&self) -> u128 {
        self.candidates
            .iter()
            .try_fold(1u128, |acc, c| acc.checked_mul(c.len() as u128))
            .unwrap_or(u128::MAX)
    }

    /// Size of the unpruned assignment space `(stores + 1) ^ loads`,
    /// saturated at `u128::MAX`. For [`RfAssignments::new`] this equals
    /// [`RfAssignments::total`]; for the address-pruned enumeration the ratio
    /// of the two is the pruning factor.
    #[must_use]
    pub fn naive_total(&self) -> u128 {
        self.naive_total
    }

    /// The number of read-from candidates of each load, in
    /// [`ProgramIndex::loads`] order.
    #[must_use]
    pub fn candidates_per_load(&self) -> Vec<usize> {
        self.candidates.iter().map(Vec::len).collect()
    }
}

impl Iterator for RfAssignments {
    type Item = Vec<RfCandidate>;

    fn next(&mut self) -> Option<Self::Item> {
        let counter = self.counter.as_mut()?;
        let assignment =
            counter.iter().zip(&self.candidates).map(|(&c, options)| options[c]).collect();
        // Advance the mixed-radix counter; drop it when it wraps around.
        let mut digit = 0;
        loop {
            if digit == counter.len() {
                self.counter = None;
                break;
            }
            counter[digit] += 1;
            if counter[digit] < self.candidates[digit].len() {
                break;
            }
            counter[digit] = 0;
            digit += 1;
        }
        Some(assignment)
    }
}

/// A set of possible 64-bit values: either a small explicit set or `Top`
/// (unknown / too many to track).
type ValueSet = Option<BTreeSet<u64>>;

/// Sets larger than this widen to `Top`; litmus-scale programs stay far
/// below it.
const MAX_SET: usize = 16;

fn widen(set: BTreeSet<u64>) -> ValueSet {
    if set.len() > MAX_SET {
        None
    } else {
        Some(set)
    }
}

/// Applies a binary operation pointwise over two value sets.
fn apply_sets(op: impl Fn(u64, u64) -> u64 + Copy, lhs: &ValueSet, rhs: &ValueSet) -> ValueSet {
    match (lhs, rhs) {
        (Some(a), Some(b)) if a.len() * b.len() <= MAX_SET * MAX_SET => {
            widen(a.iter().flat_map(|&x| b.iter().map(move |&y| op(x, y))).collect())
        }
        _ => None,
    }
}

/// Statically possible addresses (and values) of a program's instructions,
/// computed by a whole-program value-set fixpoint.
///
/// Every register starts at zero (the ISA's uninitialised-register value);
/// ALU instructions combine operand sets pointwise; a load's value set is the
/// union of the initial values of its possible addresses and the data sets of
/// every store it may read from (excluding program-order-younger same-thread
/// stores, which no model lets a load observe). Sets larger than a small
/// bound widen to "unknown". The least fixpoint over-approximates every
/// execution that value propagation can concretise, so disjoint address sets
/// prove a read-from pairing impossible.
#[derive(Debug, Clone)]
pub struct StaticAddrs {
    /// `addrs[proc][idx]`: possible addresses of the memory instruction at
    /// that position (`None` for unknown, and for non-memory instructions).
    addrs: Vec<Vec<ValueSet>>,
}

impl StaticAddrs {
    /// Runs the value-set analysis over every thread of the test's program.
    #[must_use]
    pub fn analyze(test: &LitmusTest) -> Self {
        let program = test.program();
        if program.has_branches() {
            // The checker never enumerates branchy programs; map everything
            // to "unknown" instead of reasoning about control flow.
            let addrs = program.threads().iter().map(|thread| vec![None; thread.len()]).collect();
            return StaticAddrs { addrs };
        }
        let mut state = Analysis::new(program);
        while state.pass(test) {}
        StaticAddrs { addrs: state.addrs }
    }

    /// The statically resolved address of the instruction at `(proc, idx)`:
    /// `Some(addr)` when the analysis proves the address is always `addr`,
    /// `None` when it is dynamic (or the instruction is not a memory access).
    #[must_use]
    pub fn address_of(&self, proc: usize, idx: usize) -> Option<u64> {
        match &self.addrs[proc][idx] {
            Some(set) if set.len() == 1 => set.first().copied(),
            _ => None,
        }
    }

    /// The full set of addresses the memory instruction at `(proc, idx)` may
    /// touch: `Some(set)` when the analysis bounded it, `None` when the
    /// address is unbounded (or the instruction is not a memory access).
    ///
    /// This is the interface the operational explorer's footprint-based
    /// partial-order reduction consumes: a thread's future accesses are the
    /// union of these sets over its not-yet-performed memory instructions.
    #[must_use]
    pub fn possible_addresses(&self, proc: usize, idx: usize) -> Option<&BTreeSet<u64>> {
        self.addrs[proc][idx].as_ref()
    }

    /// Returns true unless the analysis proves the two memory instructions
    /// can never touch the same address.
    #[must_use]
    pub fn may_alias(&self, a: InstrRef, b: InstrRef) -> bool {
        match (&self.addrs[a.proc][a.idx], &self.addrs[b.proc][b.idx]) {
            (Some(x), Some(y)) => !x.is_disjoint(y),
            _ => true,
        }
    }
}

/// The mutable state of the value-set fixpoint.
struct Analysis {
    /// Possible result values per instruction (ALU result, load value, store
    /// data).
    values: Vec<Vec<ValueSet>>,
    /// Possible addresses per memory instruction.
    addrs: Vec<Vec<ValueSet>>,
    /// Every store in the program, for the load transfer function.
    stores: Vec<InstrRef>,
}

impl Analysis {
    fn new(program: &Program) -> Self {
        let empty: Vec<Vec<ValueSet>> = program
            .threads()
            .iter()
            .map(|thread| vec![Some(BTreeSet::new()); thread.len()])
            .collect();
        let stores = program
            .iter_instructions()
            .filter(|(_, _, instr)| instr.is_store())
            .map(|(proc, idx, _)| InstrRef::new(proc.index(), idx))
            .collect();
        Analysis { values: empty.clone(), addrs: empty, stores }
    }

    /// The value set of an operand read by the instruction at
    /// `(proc, idx)`: an immediate, the youngest older writer of the
    /// register, or zero for an unwritten register.
    fn operand(&self, program: &Program, proc: usize, idx: usize, op: &Operand) -> ValueSet {
        match op {
            Operand::Imm(v) => Some([v.raw()].into()),
            Operand::Reg(reg) => self.register(program, proc, idx, *reg),
        }
    }

    fn register(&self, program: &Program, proc: usize, idx: usize, reg: Reg) -> ValueSet {
        let thread = &program.threads()[proc];
        let writer = (0..idx).rev().find(|&i| thread.instructions()[i].write_set().contains(&reg));
        match writer {
            Some(i) => self.values[proc][i].clone(),
            None => Some([0].into()),
        }
    }

    /// One monotone pass over every instruction; returns true if any set
    /// grew.
    fn pass(&mut self, test: &LitmusTest) -> bool {
        let program = test.program();
        let mut changed = false;
        for (proc_id, idx, instr) in program.iter_instructions() {
            let proc = proc_id.index();
            let (value, addr) = match instr {
                Instruction::Alu { op, lhs, rhs, .. } => {
                    let lhs = self.operand(program, proc, idx, lhs);
                    let rhs = self.operand(program, proc, idx, rhs);
                    let op = *op;
                    let apply = move |a: u64, b: u64| op.apply(a.into(), b.into()).raw();
                    (apply_sets(apply, &lhs, &rhs), None)
                }
                Instruction::Load { addr, .. } => {
                    let base = self.operand(program, proc, idx, &addr.base);
                    let addresses =
                        apply_sets(u64::wrapping_add, &base, &Some([addr.offset].into()));
                    let value = self.load_value(test, InstrRef::new(proc, idx), &addresses);
                    (value, Some(addresses))
                }
                Instruction::Store { addr, data } => {
                    let base = self.operand(program, proc, idx, &addr.base);
                    let addresses =
                        apply_sets(u64::wrapping_add, &base, &Some([addr.offset].into()));
                    (self.operand(program, proc, idx, data), Some(addresses))
                }
                Instruction::Fence { .. } | Instruction::Branch { .. } => (Some([0].into()), None),
            };
            changed |= grow(&mut self.values[proc][idx], value);
            if let Some(addresses) = addr {
                changed |= grow(&mut self.addrs[proc][idx], addresses);
            }
        }
        changed
    }

    /// The possible values of a load: initial values of its possible
    /// addresses plus the data of every store it may read from.
    fn load_value(&self, test: &LitmusTest, load: InstrRef, addresses: &ValueSet) -> ValueSet {
        let Some(address_set) = addresses else { return None };
        let mut out: BTreeSet<u64> =
            address_set.iter().map(|&a| test.initial_value(a).raw()).collect();
        for &store in &self.stores {
            if store.proc == load.proc && store.idx > load.idx {
                continue;
            }
            let store_addrs = &self.addrs[store.proc][store.idx];
            let aliases = match store_addrs {
                Some(set) => !set.is_disjoint(address_set),
                None => true,
            };
            if !aliases {
                continue;
            }
            match &self.values[store.proc][store.idx] {
                Some(data) => out.extend(data.iter().copied()),
                None => return None,
            }
        }
        widen(out)
    }
}

/// Grows `slot` to include `update` (sets only ever grow towards `Top`);
/// returns true if the slot changed.
fn grow(slot: &mut ValueSet, update: ValueSet) -> bool {
    match (&mut *slot, update) {
        (None, _) => false,
        (Some(_), None) => {
            *slot = None;
            true
        }
        (Some(current), Some(new)) => {
            let before = current.len();
            current.extend(new);
            if current.len() > MAX_SET {
                *slot = None;
                return true;
            }
            current.len() != before
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::library;

    #[test]
    fn dekker_has_nine_naive_assignments() {
        let test = library::dekker();
        let index = ProgramIndex::new(test.program());
        let assignments = RfAssignments::new(&index);
        assert_eq!(assignments.total(), 9);
        assert_eq!(assignments.naive_total(), 9);
        let all: Vec<_> = assignments.collect();
        assert_eq!(all.len(), 9);
        // Every assignment has one candidate per load.
        assert!(all.iter().all(|a| a.len() == 2));
        // The first assignment is all-Init.
        assert_eq!(all[0], vec![RfCandidate::Init, RfCandidate::Init]);
        // All assignments are distinct.
        let unique: std::collections::BTreeSet<String> =
            all.iter().map(|a| format!("{a:?}")).collect();
        assert_eq!(unique.len(), 9);
    }

    #[test]
    fn dekker_pruning_keeps_only_same_address_pairings() {
        // Dekker: each load has exactly one same-address store, so the pruned
        // space is 2^2 = 4 instead of 3^2 = 9.
        let test = library::dekker();
        let index = ProgramIndex::new(test.program());
        let pruned = RfAssignments::address_pruned(&test, &index);
        assert_eq!(pruned.total(), 4);
        assert_eq!(pruned.naive_total(), 9);
        assert_eq!(pruned.clone().count(), 4);
        // Every pruned-away assignment fails concretisation anyway.
        for assignment in RfAssignments::new(&index) {
            let concretisable = crate::propagate::concretize(&test, &index, &assignment).is_some();
            let kept = RfAssignments::address_pruned(&test, &index).any(|a| a == assignment);
            assert!(kept || !concretisable, "pruned a concretisable assignment");
        }
    }

    #[test]
    fn dependent_addresses_resolve_to_small_sets() {
        // mp_addr's second load computes its address from the first load's
        // result: the value-set analysis narrows it to {0, a}, keeping the
        // store to `a` but pruning the store to `b`.
        let test = library::mp_addr();
        let index = ProgramIndex::new(test.program());
        let addrs = StaticAddrs::analyze(&test);
        let dependent = index.loads[1];
        assert_eq!(addrs.address_of(dependent.proc, dependent.idx), None, "not a singleton");
        let pruned = RfAssignments::address_pruned(&test, &index);
        let per_load = pruned.candidates_per_load();
        assert_eq!(per_load, vec![2, 2], "each load keeps Init plus one store");
        assert_eq!(pruned.total(), 4);
        assert_eq!(pruned.naive_total(), 9);
    }

    #[test]
    fn artificial_dependencies_do_not_defeat_the_analysis() {
        // rsw's `r2 = c + r1 - r1` always equals `c`, but the set-based
        // analysis loses the correlation between the two `r1` reads and
        // yields {c-1, c, c+1}. None of those phantom addresses is a store
        // address, so the middle load still prunes to Init-only.
        let test = library::rsw();
        let index = ProgramIndex::new(test.program());
        let pruned = RfAssignments::address_pruned(&test, &index);
        assert_eq!(pruned.candidates_per_load(), vec![2, 1, 1, 2]);
        assert!(
            pruned.naive_total() >= 5 * pruned.total(),
            "rsw: naive {} vs pruned {}",
            pruned.naive_total(),
            pruned.total()
        );
    }

    #[test]
    fn at_least_three_library_tests_prune_five_fold() {
        let five_fold: Vec<String> = library::all_tests()
            .iter()
            .filter(|test| {
                let index = ProgramIndex::new(test.program());
                let pruned = RfAssignments::address_pruned(test, &index);
                pruned.total() > 0 && pruned.naive_total() >= 5 * pruned.total()
            })
            .map(|test| test.name().to_string())
            .collect();
        assert!(
            five_fold.len() >= 3,
            "expected >= 3 tests with a 5x pruning factor, got {five_fold:?}"
        );
    }

    #[test]
    fn store_only_program_has_one_empty_assignment() {
        let index = ProgramIndex::new(library::two_plus_two_w().program());
        let assignments: Vec<_> = RfAssignments::new(&index).collect();
        assert_eq!(assignments.len(), 1);
        assert!(assignments[0].is_empty());
    }

    #[test]
    fn rsw_assignment_count_matches_formula() {
        let index = ProgramIndex::new(library::rsw().program());
        let assignments = RfAssignments::new(&index);
        let expected = (index.stores.len() as u128 + 1).pow(index.loads.len() as u32);
        assert_eq!(assignments.total(), expected);
        assert_eq!(assignments.count() as u128, expected);
    }

    #[test]
    fn pruning_never_drops_a_concretisable_assignment() {
        for test in library::all_tests() {
            let index = ProgramIndex::new(test.program());
            let kept: std::collections::BTreeSet<Vec<RfCandidate>> =
                RfAssignments::address_pruned(&test, &index).collect();
            for assignment in RfAssignments::new(&index) {
                if crate::propagate::concretize(&test, &index, &assignment).is_some() {
                    // Pruned assignments must be exactly the non-concretisable
                    // ones or ones rejected by every memory-order search
                    // (po-younger same-thread stores); the latter always fail
                    // concretisation too unless addresses match, in which
                    // case the checker-level differential tests cover them.
                    let same_thread_future =
                        index.loads.iter().zip(&assignment).any(|(&load_ref, candidate)| {
                            match candidate {
                                RfCandidate::Store(sid) => {
                                    let store_ref = index.stores[*sid];
                                    store_ref.proc == load_ref.proc && store_ref.idx > load_ref.idx
                                }
                                RfCandidate::Init => false,
                            }
                        });
                    assert!(
                        kept.contains(&assignment) || same_thread_future,
                        "{}: pruned a concretisable assignment {assignment:?}",
                        test.name()
                    );
                }
            }
        }
    }

    #[test]
    fn totals_saturate_instead_of_overflowing() {
        use gam_isa::prelude::*;
        // 80 loads x 41 options is far beyond u64 (and the old usize::pow
        // would have panicked or wrapped); the totals must saturate or report
        // the exact u128 value, never wrap.
        let a = Loc::new("a");
        let mut threads = Vec::new();
        for p in 0..8 {
            let mut t = ThreadProgram::builder(ProcId::new(p));
            for i in 0..10 {
                t.store(Addr::loc(a), Operand::imm(1));
                t.load(Reg::new(i + 1), Addr::loc(a));
            }
            threads.push(t.build());
        }
        let program = Program::new(threads);
        let index = ProgramIndex::new(&program);
        let assignments = RfAssignments::new(&index);
        let expected = 81u128.checked_pow(80).unwrap_or(u128::MAX);
        assert_eq!(assignments.naive_total(), expected);
        assert_eq!(assignments.total(), expected);
        assert!(assignments.total() > u128::from(u64::MAX));
    }
}
