//! # gam-axiomatic
//!
//! An axiomatic execution enumerator ("herd-like" checker) for the GAM
//! memory-model family.
//!
//! Given a litmus test and a [`gam_core::ModelSpec`], the checker computes the
//! exact set of final-state outcomes the model allows by enumerating the
//! axiomatic semantics of Section IV-A of *Constructing a Weak Memory Model*:
//!
//! 1. **read-from enumeration** — every load is assigned a source: the
//!    initial memory value or one of the program's stores ([`enumerate`]);
//! 2. **value propagation** — register and memory values are propagated
//!    through the assignment until every address and store datum is concrete;
//!    assignments with unresolvable (cyclic) value dependencies are rejected
//!    ([`propagate`]);
//! 3. **preserved program order** — `<ppo` is computed per thread by
//!    `gam-core` on the resolved instructions;
//! 4. **memory-order search** — a backtracking search looks for a total
//!    global memory order `<mo` over all memory events that contains `<ppo`
//!    (axiom *InstOrder*) and satisfies the model's *LoadValue* axiom
//!    ([`mo`]);
//! 5. every consistent execution's observable outcome is collected
//!    ([`checker`]).
//!
//! # Example
//!
//! ```
//! use gam_axiomatic::{AxiomaticChecker, Verdict};
//! use gam_core::model;
//! use gam_isa::litmus::library;
//!
//! // GAM forbids the CoRR non-SC behaviour, GAM0 allows it (Figure 14a).
//! let corr = library::corr();
//! assert_eq!(AxiomaticChecker::new(model::gam()).check(&corr).unwrap(), Verdict::Forbidden);
//! assert_eq!(AxiomaticChecker::new(model::gam0()).check(&corr).unwrap(), Verdict::Allowed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checker;
pub mod enumerate;
pub mod error;
pub mod execution;
pub mod mo;
pub mod propagate;

pub use checker::{AxiomaticChecker, CheckStats, CheckerConfig, Verdict, Witness};
pub use enumerate::StaticAddrs;
pub use error::CheckError;
pub use execution::{ConcreteExecution, InstrRef, RfCandidate};
