//! The public axiomatic-checking API.

use std::collections::BTreeSet;
use std::fmt;

use gam_core::{model::ModelSpec, ppo, Relation, RfSource};
use gam_isa::litmus::{LitmusTest, Observation, Outcome};
use gam_isa::Value;

use crate::enumerate::RfAssignments;
use crate::error::CheckError;
use crate::execution::{ConcreteExecution, InstrRef, ProgramIndex};
use crate::mo::{LoadConstraint, MoProblem};
use crate::propagate::concretize;

/// The answer to "does the model allow the test's condition of interest?".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Some consistent execution matches the condition.
    Allowed,
    /// No consistent execution matches the condition.
    Forbidden,
}

impl Verdict {
    /// Returns true for [`Verdict::Allowed`].
    #[must_use]
    pub fn is_allowed(self) -> bool {
        matches!(self, Verdict::Allowed)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Allowed => "allowed",
            Verdict::Forbidden => "forbidden",
        })
    }
}

/// A concrete execution demonstrating that an outcome is allowed.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The observable outcome of the execution (projected onto the test's
    /// observed registers and locations).
    pub outcome: Outcome,
    /// The read-from source of every load.
    pub rf: Vec<(InstrRef, RfSource)>,
    /// The global memory order, oldest first.
    pub memory_order: Vec<InstrRef>,
}

/// Search statistics of one checking run, the raw material of the perf
/// trajectory (`perf_snapshot` in `gam-bench`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckStats {
    /// Size of the unpruned read-from assignment space
    /// `(stores + 1) ^ loads`, saturated at `u128::MAX`.
    pub assignments_naive: u128,
    /// Read-from assignments actually enumerated (after address pruning).
    pub assignments_enumerated: u64,
    /// Enumerated assignments that survived value propagation and produced a
    /// memory-order search problem.
    pub assignments_concretized: u64,
    /// Valid memory orders visited across all assignments.
    pub orders_visited: u64,
}

impl CheckStats {
    /// The pruning factor `naive / enumerated` (1 when nothing was pruned;
    /// `None` for load-free programs with an empty assignment space).
    #[must_use]
    pub fn pruning_factor(&self) -> Option<f64> {
        if self.assignments_enumerated == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        Some(self.assignments_naive as f64 / self.assignments_enumerated as f64)
    }
}

/// Tunable limits of the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckerConfig {
    /// Maximum number of memory events the checker accepts (the search is
    /// exponential in this number).
    pub max_events: usize,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig { max_events: 16 }
    }
}

/// An axiomatic checker for one memory model.
#[derive(Debug, Clone)]
pub struct AxiomaticChecker {
    model: ModelSpec,
    config: CheckerConfig,
    interrupt: gam_core::Interrupt,
}

/// Memory-order polling cadence: the checker's [`gam_core::Interrupt`] is
/// additionally checked once per read-from assignment, so this only bounds
/// the latency inside a single assignment's order search.
const ORDER_POLL_MASK: u64 = 0x3FF;

impl AxiomaticChecker {
    /// Creates a checker for the given model with default limits.
    #[must_use]
    pub fn new(model: ModelSpec) -> Self {
        AxiomaticChecker::with_config(model, CheckerConfig::default())
    }

    /// Creates a checker with explicit limits.
    #[must_use]
    pub fn with_config(model: ModelSpec, config: CheckerConfig) -> Self {
        AxiomaticChecker { model, config, interrupt: gam_core::Interrupt::none() }
    }

    /// Attaches a cooperative [`gam_core::Interrupt`]: the rf/mo enumeration
    /// polls it (once per read-from assignment and every 1024 memory orders)
    /// and stops with [`CheckError::Interrupted`], carrying the partial
    /// outcomes collected so far.
    #[must_use]
    pub fn with_interrupt(mut self, interrupt: gam_core::Interrupt) -> Self {
        self.interrupt = interrupt;
        self
    }

    /// The model this checker implements.
    #[must_use]
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The limits this checker runs with.
    #[must_use]
    pub fn config(&self) -> CheckerConfig {
        self.config
    }

    /// Computes the full set of outcomes (projected onto the test's observed
    /// registers and locations) that the model allows for the test.
    ///
    /// # Errors
    ///
    /// Returns an error if the program contains branches or exceeds the
    /// configured event limit.
    pub fn allowed_outcomes(&self, test: &LitmusTest) -> Result<BTreeSet<Outcome>, CheckError> {
        Ok(self.allowed_outcomes_with_stats(test)?.0)
    }

    /// Like [`AxiomaticChecker::allowed_outcomes`], additionally reporting
    /// the search statistics (assignments enumerated/pruned, orders visited).
    ///
    /// # Errors
    ///
    /// Returns an error if the program contains branches or exceeds the
    /// configured event limit.
    pub fn allowed_outcomes_with_stats(
        &self,
        test: &LitmusTest,
    ) -> Result<(BTreeSet<Outcome>, CheckStats), CheckError> {
        let mut outcomes = BTreeSet::new();
        let result = self.enumerate(test, |_, _, outcome| {
            outcomes.insert(outcome.clone());
            true
        });
        match result {
            Ok(stats) => Ok((outcomes, stats)),
            // An interrupted enumeration keeps what it saw: the outcomes
            // visited so far are the partial answer.
            Err(CheckError::Interrupted { test, reason, .. }) => {
                Err(CheckError::Interrupted { test, reason, partial_outcomes: outcomes })
            }
            Err(err) => Err(err),
        }
    }

    /// The complete outcome set computed by the *unoptimised* reference
    /// pipeline: naive read-from enumeration (no address pruning) and the
    /// validate-complete-orders-only memory-order search. Exponentially
    /// slower than [`AxiomaticChecker::allowed_outcomes`]; exists purely as
    /// the oracle for differential tests of the optimisations.
    ///
    /// # Errors
    ///
    /// Returns an error if the program contains branches or exceeds the
    /// configured event limit.
    pub fn allowed_outcomes_reference(
        &self,
        test: &LitmusTest,
    ) -> Result<BTreeSet<Outcome>, CheckError> {
        let mut outcomes = BTreeSet::new();
        self.enumerate_with(test, SearchStrategy::Reference, |_, _, outcome| {
            outcomes.insert(outcome.clone());
            true
        })?;
        Ok(outcomes)
    }

    /// Decides whether the test's condition of interest is allowed.
    ///
    /// # Errors
    ///
    /// Returns an error if the program contains branches or exceeds the
    /// configured event limit.
    pub fn check(&self, test: &LitmusTest) -> Result<Verdict, CheckError> {
        Ok(if self.find_witness(test)?.is_some() { Verdict::Allowed } else { Verdict::Forbidden })
    }

    /// Searches for an execution matching the test's condition of interest and
    /// returns it as a witness, or `None` if the condition is forbidden.
    ///
    /// # Errors
    ///
    /// Returns an error if the program contains branches or exceeds the
    /// configured event limit.
    pub fn find_witness(&self, test: &LitmusTest) -> Result<Option<Witness>, CheckError> {
        let index = ProgramIndex::new(test.program());
        let mut witness = None;
        self.enumerate(test, |exec, order, outcome| {
            if test.condition().matched_by(outcome) {
                witness = Some(Witness {
                    outcome: outcome.clone(),
                    rf: exec.rf.iter().map(|(&r, &s)| (r, s)).collect(),
                    memory_order: order.iter().map(|&e| index.memory_events[e]).collect(),
                });
                false
            } else {
                true
            }
        })?;
        Ok(witness)
    }

    /// Enumerates every consistent execution of the test under the model and
    /// invokes `visit` with the concrete execution, the memory order (as
    /// event indices) and the projected outcome. `visit` returns `false` to
    /// stop the enumeration. Returns the search statistics.
    fn enumerate(
        &self,
        test: &LitmusTest,
        visit: impl FnMut(&ConcreteExecution, &[usize], &Outcome) -> bool,
    ) -> Result<CheckStats, CheckError> {
        self.enumerate_with(test, SearchStrategy::Optimized, visit)
    }

    /// The enumeration core shared by the optimised and the reference
    /// pipelines.
    fn enumerate_with(
        &self,
        test: &LitmusTest,
        strategy: SearchStrategy,
        mut visit: impl FnMut(&ConcreteExecution, &[usize], &Outcome) -> bool,
    ) -> Result<CheckStats, CheckError> {
        gam_core::fault::hit("axiomatic");
        if test.program().has_branches() {
            return Err(CheckError::BranchesUnsupported { test: test.name().to_string() });
        }
        let index = ProgramIndex::new(test.program());
        let events = index.memory_events.len();
        if events > self.config.max_events {
            return Err(CheckError::TooManyEvents {
                test: test.name().to_string(),
                events,
                limit: self.config.max_events,
            });
        }

        // Memory observations make the outcome depend on the memory order, so
        // every valid order must be visited; otherwise one order per read-from
        // assignment suffices.
        let needs_all_orders =
            test.observed().iter().any(|obs| matches!(obs, Observation::Memory(_)));

        let mut rf_phase = gam_obs::phase("rf_enum");
        rf_phase.arg("test", test.name());
        let search_start = std::time::Instant::now();
        let assignments = match strategy {
            SearchStrategy::Optimized => RfAssignments::address_pruned(test, &index),
            SearchStrategy::Reference => RfAssignments::new(&index),
        };
        let mut stats =
            CheckStats { assignments_naive: assignments.naive_total(), ..CheckStats::default() };
        // One edge-relation allocation recycled across every assignment.
        let mut scratch = Relation::new(events);
        let mut stop = false;
        let interrupt_armed = self.interrupt.is_armed();
        let mut interrupted: Option<gam_core::StopReason> = None;

        for assignment in assignments {
            if interrupt_armed {
                if let Some(reason) = self.interrupt.triggered() {
                    interrupted = Some(reason);
                    break;
                }
            }
            stats.assignments_enumerated += 1;
            if let Some(exec) = concretize(test, &index, &assignment) {
                stats.assignments_concretized += 1;
                scratch.clear();
                let problem = self.build_problem(test, &index, &exec, scratch);
                let mut on_order = |order: &[usize]| {
                    stats.orders_visited += 1;
                    if stats.orders_visited & ORDER_POLL_MASK == 0 {
                        if interrupt_armed {
                            if let Some(reason) = self.interrupt.triggered() {
                                interrupted = Some(reason);
                                stop = true;
                                return false;
                            }
                        }
                        if gam_obs::progress::armed() {
                            let us = u64::try_from(search_start.elapsed().as_micros())
                                .unwrap_or(u64::MAX)
                                .max(1);
                            gam_obs::progress!(
                                "axiomatic",
                                "{}: {} orders, {} assignments, {} orders/sec",
                                test.name(),
                                stats.orders_visited,
                                stats.assignments_enumerated,
                                stats.orders_visited.saturating_mul(1_000_000) / us
                            );
                        }
                    }
                    let outcome = self.project_outcome(test, &index, &exec, order);
                    if !visit(&exec, order, &outcome) {
                        stop = true;
                        return false;
                    }
                    needs_all_orders
                };
                {
                    let _mo_phase = gam_obs::phase("mo_search");
                    match strategy {
                        SearchStrategy::Optimized => problem.for_each_valid_order(&mut on_order),
                        SearchStrategy::Reference => {
                            problem.for_each_valid_order_reference(&mut on_order)
                        }
                    };
                }
                scratch = problem.into_precede();
            }
            if stop {
                break;
            }
        }
        if let Some(reason) = interrupted {
            // Callers that accumulate outcomes (e.g. `allowed_outcomes`)
            // re-attach their partial set; the enumeration core itself has
            // already handed every visited outcome to `visit`.
            return Err(CheckError::Interrupted {
                test: test.name().to_string(),
                reason,
                partial_outcomes: BTreeSet::new(),
            });
        }
        Ok(stats)
    }

    /// Builds the memory-order search problem for one concrete execution.
    /// `precede` is a cleared scratch relation of the right size, recycled by
    /// the caller across assignments.
    fn build_problem(
        &self,
        test: &LitmusTest,
        index: &ProgramIndex,
        exec: &ConcreteExecution,
        mut precede: Relation,
    ) -> MoProblem {
        let program = test.program();
        let events = &index.memory_events;
        let n = events.len();
        let event_of = |r: InstrRef| index.event_index(r).expect("memory event");

        debug_assert_eq!(precede.len(), n, "scratch relation sized to the event count");
        debug_assert_eq!(precede.edge_count(), 0, "scratch relation starts cleared");

        let mut store_addr = vec![None; n];
        for &store_ref in &index.stores {
            store_addr[event_of(store_ref)] = exec.address(store_ref);
        }

        // Axiom InstOrder: ppo edges, restricted to memory instructions.
        for proc in 0..program.num_threads() {
            let resolved = exec.resolved_thread(program, proc);
            let thread_ppo = gam_core::preserved_program_order(&resolved, &self.model);
            let memory_only = ppo::memory_ppo(&resolved, &thread_ppo);
            for (i, j) in memory_only.iter_pairs() {
                precede.insert(event_of(InstrRef::new(proc, i)), event_of(InstrRef::new(proc, j)));
            }
        }

        // Read-from pruning edges and LoadValue constraints.
        let bypass = self.model.load_value_local_bypass();
        let mut loads = Vec::with_capacity(index.loads.len());
        for &load_ref in &index.loads {
            let load_event = event_of(load_ref);
            let addr = exec.address(load_ref).expect("resolved load address");
            let po_older_stores: Vec<usize> = if bypass {
                index
                    .stores
                    .iter()
                    .filter(|s| {
                        s.proc == load_ref.proc
                            && s.idx < load_ref.idx
                            && exec.address(**s) == Some(addr)
                    })
                    .map(|s| event_of(*s))
                    .collect()
            } else {
                Vec::new()
            };
            let source = match exec.rf_source(load_ref).expect("load has a read-from source") {
                RfSource::Init(_) => {
                    // Reading the initial value requires every same-address
                    // store to be memory-order-younger than the load.
                    for &store_ref in &index.stores {
                        if exec.address(store_ref) == Some(addr) {
                            precede.insert(load_event, event_of(store_ref));
                        }
                    }
                    None
                }
                RfSource::Store(sid) => {
                    let store_ref = index.stores[sid as usize];
                    let locally_forwardable =
                        bypass && store_ref.proc == load_ref.proc && store_ref.idx < load_ref.idx;
                    if !locally_forwardable {
                        precede.insert(event_of(store_ref), load_event);
                    }
                    Some(event_of(store_ref))
                }
            };
            loads.push(LoadConstraint { load: load_event, addr, source, po_older_stores });
        }

        MoProblem::new(n, precede, store_addr, loads)
    }

    /// Projects the observable outcome of one consistent execution.
    fn project_outcome(
        &self,
        test: &LitmusTest,
        index: &ProgramIndex,
        exec: &ConcreteExecution,
        order: &[usize],
    ) -> Outcome {
        let mut outcome = Outcome::new();
        for observation in test.observed() {
            let value = match observation {
                Observation::Register(proc, reg) => {
                    exec.final_register_value(test.program(), proc.index(), *reg)
                }
                Observation::Memory(loc) => {
                    final_memory_value(test, index, exec, order, loc.address())
                }
            };
            outcome.set(*observation, value);
        }
        outcome
    }
}

/// Which enumeration/search pipeline [`AxiomaticChecker::enumerate_with`]
/// runs: the optimised one (address-pruned assignments, incremental
/// memory-order pruning) or the naive reference oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SearchStrategy {
    Optimized,
    Reference,
}

/// The final value of a memory location: the datum of the memory-order-last
/// store to it, or the initial value if no store touches it.
fn final_memory_value(
    test: &LitmusTest,
    index: &ProgramIndex,
    exec: &ConcreteExecution,
    order: &[usize],
    addr: u64,
) -> Value {
    let mut position = vec![0usize; index.memory_events.len()];
    for (rank, &event) in order.iter().enumerate() {
        position[event] = rank;
    }
    index
        .stores
        .iter()
        .filter(|s| exec.address(**s) == Some(addr))
        .max_by_key(|s| position[index.event_index(**s).expect("store is an event")])
        .map(|s| exec.value(*s))
        .unwrap_or_else(|| test.initial_value(addr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_core::model;
    use gam_isa::litmus::library;
    use gam_isa::{Loc, ProcId, Reg};

    fn verdict(model: ModelSpec, test: &LitmusTest) -> Verdict {
        AxiomaticChecker::new(model).check(test).expect("checkable")
    }

    #[test]
    fn pre_cancelled_check_reports_interruption() {
        let token = gam_core::CancelToken::new();
        token.cancel();
        let checker = AxiomaticChecker::new(model::gam())
            .with_interrupt(gam_core::Interrupt::none().with_cancel(token));
        match checker.check(&library::dekker()) {
            Err(CheckError::Interrupted { reason, .. }) => {
                assert_eq!(reason, gam_core::StopReason::Cancelled);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    #[test]
    fn expired_wall_budget_interrupts_outcome_enumeration() {
        let checker = AxiomaticChecker::new(model::gam()).with_interrupt(
            gam_core::Interrupt::none().with_wall_budget(std::time::Duration::ZERO),
        );
        match checker.allowed_outcomes(&library::iriw()) {
            Err(CheckError::Interrupted { reason, partial_outcomes, .. }) => {
                assert!(matches!(reason, gam_core::StopReason::WallBudget { .. }));
                // The deadline was already expired at the first poll, so
                // nothing was enumerated yet.
                assert!(partial_outcomes.is_empty());
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    #[test]
    fn unarmed_interrupt_leaves_outcomes_identical() {
        let test = library::mp();
        let baseline = AxiomaticChecker::new(model::gam()).allowed_outcomes(&test).unwrap();
        let armed = AxiomaticChecker::new(model::gam())
            .with_interrupt(
                gam_core::Interrupt::none().with_wall_budget(std::time::Duration::from_secs(600)),
            )
            .allowed_outcomes(&test)
            .unwrap();
        assert_eq!(baseline, armed);
    }

    #[test]
    fn dekker_verdicts() {
        let test = library::dekker();
        assert_eq!(verdict(model::sc(), &test), Verdict::Forbidden);
        assert_eq!(verdict(model::tso(), &test), Verdict::Allowed);
        assert_eq!(verdict(model::gam(), &test), Verdict::Allowed);
        assert_eq!(verdict(model::gam0(), &test), Verdict::Allowed);
        assert_eq!(verdict(model::gam_arm(), &test), Verdict::Allowed);
    }

    #[test]
    fn oota_forbidden_by_every_model() {
        let test = library::oota();
        for m in model::all() {
            assert_eq!(verdict(m.clone(), &test), Verdict::Forbidden, "{}", m.name());
        }
    }

    #[test]
    fn corr_distinguishes_gam_from_gam0() {
        let test = library::corr();
        assert_eq!(verdict(model::gam(), &test), Verdict::Forbidden);
        assert_eq!(verdict(model::gam_arm(), &test), Verdict::Forbidden);
        assert_eq!(verdict(model::gam0(), &test), Verdict::Allowed);
        assert_eq!(verdict(model::sc(), &test), Verdict::Forbidden);
        assert_eq!(verdict(model::tso(), &test), Verdict::Forbidden);
    }

    #[test]
    fn mp_addr_dependency_is_respected_by_weak_models() {
        let test = library::mp_addr();
        for m in model::all() {
            assert_eq!(verdict(m.clone(), &test), Verdict::Forbidden, "{}", m.name());
        }
    }

    #[test]
    fn mp_without_fences_is_weak() {
        let test = library::mp();
        assert_eq!(verdict(model::sc(), &test), Verdict::Forbidden);
        assert_eq!(verdict(model::tso(), &test), Verdict::Forbidden);
        assert_eq!(verdict(model::gam(), &test), Verdict::Allowed);
        assert_eq!(verdict(model::gam0(), &test), Verdict::Allowed);
    }

    #[test]
    fn rsw_distinguishes_arm_from_gam() {
        let test = library::rsw();
        assert_eq!(verdict(model::gam_arm(), &test), Verdict::Allowed);
        assert_eq!(verdict(model::gam(), &test), Verdict::Forbidden);
    }

    #[test]
    fn rnsw_forbidden_by_both_arm_and_gam() {
        let test = library::rnsw();
        assert_eq!(verdict(model::gam_arm(), &test), Verdict::Forbidden);
        assert_eq!(verdict(model::gam(), &test), Verdict::Forbidden);
    }

    #[test]
    fn allowed_outcomes_of_corr_under_gam() {
        let test = library::corr();
        let outcomes = AxiomaticChecker::new(model::gam()).allowed_outcomes(&test).unwrap();
        let p2 = ProcId::new(1);
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let make = |a: u64, b: u64| Outcome::new().with_reg(p2, r1, a).with_reg(p2, r2, b);
        assert!(outcomes.contains(&make(0, 0)));
        assert!(outcomes.contains(&make(0, 1)));
        assert!(outcomes.contains(&make(1, 1)));
        assert!(!outcomes.contains(&make(1, 0)), "per-location SC forbids the stale re-read");
        assert_eq!(outcomes.len(), 3);
    }

    #[test]
    fn allowed_outcomes_of_corr_under_gam0_include_stale_reread() {
        let test = library::corr();
        let outcomes = AxiomaticChecker::new(model::gam0()).allowed_outcomes(&test).unwrap();
        assert_eq!(outcomes.len(), 4);
    }

    #[test]
    fn witness_contains_rf_and_memory_order() {
        let test = library::dekker();
        let witness = AxiomaticChecker::new(model::gam())
            .find_witness(&test)
            .unwrap()
            .expect("dekker non-SC outcome is allowed under GAM");
        assert_eq!(witness.rf.len(), 2);
        assert_eq!(witness.memory_order.len(), 4);
        assert!(test.condition().matched_by(&witness.outcome));
    }

    #[test]
    fn witness_absent_when_forbidden() {
        let test = library::corr();
        assert!(AxiomaticChecker::new(model::gam()).find_witness(&test).unwrap().is_none());
    }

    #[test]
    fn coww_final_memory_is_the_younger_store() {
        let test = library::coww();
        let outcomes = AxiomaticChecker::new(model::gam()).allowed_outcomes(&test).unwrap();
        let a = Loc::new("a");
        assert_eq!(outcomes.len(), 1);
        let only = outcomes.iter().next().unwrap();
        assert_eq!(only.get(&Observation::Memory(a)), Some(Value::new(2)));
        assert_eq!(verdict(model::gam(), &test), Verdict::Forbidden);
    }

    #[test]
    fn store_forwarding_forbidden_everywhere() {
        let test = library::store_forwarding();
        for m in model::all() {
            assert_eq!(verdict(m.clone(), &test), Verdict::Forbidden, "{}", m.name());
        }
    }

    #[test]
    fn event_limit_is_enforced() {
        let test = library::dekker();
        let checker = AxiomaticChecker::with_config(model::gam(), CheckerConfig { max_events: 2 });
        assert!(matches!(checker.check(&test), Err(CheckError::TooManyEvents { .. })));
    }

    #[test]
    fn verdict_display_and_helpers() {
        assert_eq!(Verdict::Allowed.to_string(), "allowed");
        assert_eq!(Verdict::Forbidden.to_string(), "forbidden");
        assert!(Verdict::Allowed.is_allowed());
        assert!(!Verdict::Forbidden.is_allowed());
    }
}
