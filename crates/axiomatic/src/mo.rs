//! Search for a global memory order satisfying the model's axioms.
//!
//! A [`MoProblem`] describes one concretised execution under one model: the
//! set of memory events, the ordering edges that any global memory order must
//! contain (axiom *InstOrder*: `I1 <ppo I2 ⇒ I1 <mo I2`, plus sound read-from
//! pruning edges), and one [`LoadConstraint`] per load encoding the
//! *LoadValue* axiom of Figure 15:
//!
//! ```text
//! St [a] v  -rf->  Ld [a]   ⇒
//!     St [a] v = max_mo { St [a] v' | St [a] v' <mo Ld [a]  ∨  St [a] v' <po Ld [a] }
//! ```
//!
//! (the `<po` disjunct is only present for models with local store
//! forwarding — every model except SC).
//!
//! The search enumerates linear extensions of the edge relation by
//! backtracking and validates the LoadValue axiom on every complete order.
//! Litmus tests have at most a dozen memory events, so explicit enumeration
//! is exact and fast.

use gam_core::Relation;

/// The LoadValue obligation of a single load event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadConstraint {
    /// Event index of the load.
    pub load: usize,
    /// Address of the load.
    pub addr: u64,
    /// Event index of the store the load reads from, or `None` for the
    /// initial memory value.
    pub source: Option<usize>,
    /// Event indices of same-address stores that are program-order-older than
    /// the load on the same processor *and* visible through local store
    /// forwarding (empty for models without the `<po` disjunct).
    pub po_older_stores: Vec<usize>,
}

/// A memory-order search problem for one concretised execution and one model.
#[derive(Debug, Clone)]
pub struct MoProblem {
    num_events: usize,
    precede: Relation,
    store_addr: Vec<Option<u64>>,
    loads: Vec<LoadConstraint>,
}

impl MoProblem {
    /// Creates a problem over `num_events` memory events.
    ///
    /// `store_addr[e]` must be `Some(addr)` exactly when event `e` is a store.
    ///
    /// # Panics
    ///
    /// Panics if `precede` or `store_addr` do not have `num_events` elements.
    #[must_use]
    pub fn new(
        num_events: usize,
        precede: Relation,
        store_addr: Vec<Option<u64>>,
        loads: Vec<LoadConstraint>,
    ) -> Self {
        assert_eq!(precede.len(), num_events, "edge relation size mismatch");
        assert_eq!(store_addr.len(), num_events, "store address table size mismatch");
        MoProblem { num_events, precede, store_addr, loads }
    }

    /// Number of memory events.
    #[must_use]
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Checks the LoadValue axiom on a complete memory order (given as the
    /// sequence of event indices from oldest to youngest).
    #[must_use]
    pub fn validate_order(&self, order: &[usize]) -> bool {
        debug_assert_eq!(order.len(), self.num_events);
        let mut position = vec![0usize; self.num_events];
        for (rank, &event) in order.iter().enumerate() {
            position[event] = rank;
        }
        self.loads.iter().all(|constraint| self.validate_load(constraint, &position))
    }

    fn validate_load(&self, constraint: &LoadConstraint, position: &[usize]) -> bool {
        // The candidate set of the LoadValue axiom: same-address stores that
        // are memory-order-older than the load, or locally forwardable.
        let candidate = |event: usize| -> bool {
            self.store_addr[event] == Some(constraint.addr)
                && (position[event] < position[constraint.load]
                    || constraint.po_older_stores.contains(&event))
        };
        match constraint.source {
            None => (0..self.num_events).all(|e| !candidate(e)),
            Some(source) => {
                if !candidate(source) {
                    return false;
                }
                // `source` must be the memory-order maximum of the candidate set.
                (0..self.num_events)
                    .filter(|&e| e != source && candidate(e))
                    .all(|e| position[e] < position[source])
            }
        }
    }

    /// Enumerates every linear extension of the edge relation that satisfies
    /// the LoadValue axiom, invoking `on_valid` with each one. `on_valid`
    /// returns `true` to continue the enumeration and `false` to stop.
    ///
    /// Returns `true` if the enumeration ran to completion and `false` if it
    /// was stopped by the callback.
    pub fn for_each_valid_order(&self, mut on_valid: impl FnMut(&[usize]) -> bool) -> bool {
        let mut placed = Vec::with_capacity(self.num_events);
        let mut used = vec![false; self.num_events];
        self.extend(&mut placed, &mut used, &mut on_valid)
    }

    /// Returns true if at least one valid memory order exists.
    #[must_use]
    pub fn has_valid_order(&self) -> bool {
        let mut found = false;
        self.for_each_valid_order(|_| {
            found = true;
            false
        });
        found
    }

    fn extend(
        &self,
        placed: &mut Vec<usize>,
        used: &mut [bool],
        on_valid: &mut impl FnMut(&[usize]) -> bool,
    ) -> bool {
        if placed.len() == self.num_events {
            if self.validate_order(placed) {
                return on_valid(placed);
            }
            return true;
        }
        for event in 0..self.num_events {
            if used[event] {
                continue;
            }
            // Every required predecessor must already be placed.
            let ready = (0..self.num_events)
                .all(|other| !self.precede.contains(other, event) || used[other]);
            if !ready {
                continue;
            }
            used[event] = true;
            placed.push(event);
            let keep_going = self.extend(placed, used, on_valid);
            placed.pop();
            used[event] = false;
            if !keep_going {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two stores (events 0, 1) to the same address and one load (event 2).
    fn two_stores_one_load(source: Option<usize>, po_older: Vec<usize>) -> MoProblem {
        MoProblem::new(
            3,
            Relation::new(3),
            vec![Some(8), Some(8), None],
            vec![LoadConstraint { load: 2, addr: 8, source, po_older_stores: po_older }],
        )
    }

    #[test]
    fn load_from_init_requires_no_older_store() {
        let problem = two_stores_one_load(None, vec![]);
        let mut orders = Vec::new();
        problem.for_each_valid_order(|o| {
            orders.push(o.to_vec());
            true
        });
        // The load must come first; the two stores may follow in either order.
        assert_eq!(orders.len(), 2);
        for order in &orders {
            assert_eq!(order[0], 2);
        }
    }

    #[test]
    fn load_from_store_requires_it_to_be_the_max() {
        let problem = two_stores_one_load(Some(0), vec![]);
        let mut orders = Vec::new();
        problem.for_each_valid_order(|o| {
            orders.push(o.to_vec());
            true
        });
        // Valid orders: store0 before load, store1 after the load OR before store0.
        // i.e. [0,2,1], [1,0,2]; invalid: [0,1,2], [1,2,0], [2,..].
        assert_eq!(orders.len(), 2);
        assert!(orders.contains(&vec![0, 2, 1]));
        assert!(orders.contains(&vec![1, 0, 2]));
    }

    #[test]
    fn po_older_store_participates_without_mo_edge() {
        // The load reads from store 0 which is po-older (forwarding); store 0
        // may then be anywhere, but store 1 must not sit between store 0 and
        // the load in a way that makes it the max of the candidate set.
        let problem = two_stores_one_load(Some(0), vec![0]);
        let mut orders = Vec::new();
        problem.for_each_valid_order(|o| {
            orders.push(o.to_vec());
            true
        });
        // All 6 permutations, minus the ones where store 1 is a candidate
        // newer than store 0: [1,2,0] keeps store1 older than the load but
        // store0 older still? position(1)<position(2): candidate; max must be 0.
        for order in &orders {
            let pos = |e: usize| order.iter().position(|&x| x == e).unwrap();
            let store1_candidate = pos(1) < pos(2);
            if store1_candidate {
                assert!(pos(1) < pos(0), "store 1 must be older than the forwarded store 0");
            }
        }
        assert!(orders.contains(&vec![2, 0, 1]), "forwarding lets the load precede its source");
    }

    #[test]
    fn precede_edges_are_respected() {
        let mut precede = Relation::new(3);
        precede.insert(0, 1);
        precede.insert(1, 2);
        let problem = MoProblem::new(
            3,
            precede,
            vec![Some(8), Some(8), None],
            vec![LoadConstraint { load: 2, addr: 8, source: Some(1), po_older_stores: vec![] }],
        );
        let mut orders = Vec::new();
        problem.for_each_valid_order(|o| {
            orders.push(o.to_vec());
            true
        });
        assert_eq!(orders, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn cyclic_edges_have_no_order() {
        let mut precede = Relation::new(2);
        precede.insert(0, 1);
        precede.insert(1, 0);
        let problem = MoProblem::new(2, precede, vec![Some(4), Some(4)], vec![]);
        assert!(!problem.has_valid_order());
    }

    #[test]
    fn early_stop_works() {
        let problem = MoProblem::new(3, Relation::new(3), vec![None, None, None], vec![]);
        let mut count = 0;
        let completed = problem.for_each_valid_order(|_| {
            count += 1;
            count < 2
        });
        assert!(!completed);
        assert_eq!(count, 2);
    }

    #[test]
    fn loads_of_different_addresses_do_not_interfere() {
        let problem = MoProblem::new(
            2,
            Relation::new(2),
            vec![Some(16), None],
            vec![LoadConstraint { load: 1, addr: 32, source: None, po_older_stores: vec![] }],
        );
        let mut count = 0;
        problem.for_each_valid_order(|_| {
            count += 1;
            true
        });
        assert_eq!(count, 2, "the store to a different address never blocks the init read");
    }

    #[test]
    fn has_valid_order_matches_enumeration() {
        let problem = two_stores_one_load(Some(1), vec![]);
        assert!(problem.has_valid_order());
        // A load reading from init while a po-older same-address store exists
        // (forwarding visible) can never validate.
        let impossible = two_stores_one_load(None, vec![0]);
        assert!(!impossible.has_valid_order());
    }
}
