//! Search for a global memory order satisfying the model's axioms.
//!
//! A [`MoProblem`] describes one concretised execution under one model: the
//! set of memory events, the ordering edges that any global memory order must
//! contain (axiom *InstOrder*: `I1 <ppo I2 ⇒ I1 <mo I2`, plus sound read-from
//! pruning edges), and one [`LoadConstraint`] per load encoding the
//! *LoadValue* axiom of Figure 15:
//!
//! ```text
//! St [a] v  -rf->  Ld [a]   ⇒
//!     St [a] v = max_mo { St [a] v' | St [a] v' <mo Ld [a]  ∨  St [a] v' <po Ld [a] }
//! ```
//!
//! (the `<po` disjunct is only present for models with local store
//! forwarding — every model except SC).
//!
//! The search enumerates linear extensions of the edge relation by
//! backtracking. The LoadValue axiom is enforced *incrementally*: placing an
//! event immediately checks every part of the axiom that the partial order
//! already determines (a load's source must already be placed or locally
//! forwardable, a placed same-address store must not outrank the source, a
//! forwardable store must not be placed after an already-placed source), so
//! doomed prefixes are cut without enumerating their exponentially many
//! completions. Readiness is tracked with per-event predecessor counts
//! instead of rescanning the edge relation, making each search step O(degree)
//! rather than O(n²). [`MoProblem::for_each_valid_order_reference`] keeps the
//! original validate-complete-orders-only search as a differential oracle.

use gam_core::Relation;

/// The LoadValue obligation of a single load event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadConstraint {
    /// Event index of the load.
    pub load: usize,
    /// Address of the load.
    pub addr: u64,
    /// Event index of the store the load reads from, or `None` for the
    /// initial memory value.
    pub source: Option<usize>,
    /// Event indices of same-address stores that are program-order-older than
    /// the load on the same processor *and* visible through local store
    /// forwarding (empty for models without the `<po` disjunct).
    pub po_older_stores: Vec<usize>,
}

/// A memory-order search problem for one concretised execution and one model.
#[derive(Debug, Clone)]
pub struct MoProblem {
    num_events: usize,
    precede: Relation,
    store_addr: Vec<Option<u64>>,
    loads: Vec<LoadConstraint>,
}

impl MoProblem {
    /// Creates a problem over `num_events` memory events.
    ///
    /// `store_addr[e]` must be `Some(addr)` exactly when event `e` is a store.
    ///
    /// # Panics
    ///
    /// Panics if `precede` or `store_addr` do not have `num_events` elements.
    #[must_use]
    pub fn new(
        num_events: usize,
        precede: Relation,
        store_addr: Vec<Option<u64>>,
        loads: Vec<LoadConstraint>,
    ) -> Self {
        assert_eq!(precede.len(), num_events, "edge relation size mismatch");
        assert_eq!(store_addr.len(), num_events, "store address table size mismatch");
        MoProblem { num_events, precede, store_addr, loads }
    }

    /// Number of memory events.
    #[must_use]
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Consumes the problem and returns its edge relation, so callers that
    /// solve one problem per enumerated execution can recycle the allocation
    /// (clear + refill) instead of reallocating per assignment.
    #[must_use]
    pub fn into_precede(self) -> Relation {
        self.precede
    }

    /// Checks the LoadValue axiom on a complete memory order (given as the
    /// sequence of event indices from oldest to youngest).
    #[must_use]
    pub fn validate_order(&self, order: &[usize]) -> bool {
        debug_assert_eq!(order.len(), self.num_events);
        let mut position = vec![0usize; self.num_events];
        for (rank, &event) in order.iter().enumerate() {
            position[event] = rank;
        }
        self.loads.iter().all(|constraint| self.validate_load(constraint, &position))
    }

    fn validate_load(&self, constraint: &LoadConstraint, position: &[usize]) -> bool {
        // The candidate set of the LoadValue axiom: same-address stores that
        // are memory-order-older than the load, or locally forwardable.
        let candidate = |event: usize| -> bool {
            self.store_addr[event] == Some(constraint.addr)
                && (position[event] < position[constraint.load]
                    || constraint.po_older_stores.contains(&event))
        };
        match constraint.source {
            None => (0..self.num_events).all(|e| !candidate(e)),
            Some(source) => {
                if !candidate(source) {
                    return false;
                }
                // `source` must be the memory-order maximum of the candidate set.
                (0..self.num_events)
                    .filter(|&e| e != source && candidate(e))
                    .all(|e| position[e] < position[source])
            }
        }
    }

    /// Enumerates every linear extension of the edge relation that satisfies
    /// the LoadValue axiom, invoking `on_valid` with each one. `on_valid`
    /// returns `true` to continue the enumeration and `false` to stop.
    ///
    /// Returns `true` if the enumeration ran to completion and `false` if it
    /// was stopped by the callback.
    pub fn for_each_valid_order(&self, mut on_valid: impl FnMut(&[usize]) -> bool) -> bool {
        // A load reading the initial value while a locally forwardable
        // same-address store exists can never validate: the forwardable store
        // is always in the candidate set. Fail before searching.
        if self.loads.iter().any(|c| c.source.is_none() && !c.po_older_stores.is_empty()) {
            return true;
        }
        let mut search = Search::new(self);
        search.extend(self, &mut on_valid)
    }

    /// The original reference search: enumerates every linear extension and
    /// validates the LoadValue axiom only on complete orders. Exponentially
    /// slower than [`MoProblem::for_each_valid_order`] on constrained
    /// problems but trivially correct — kept as the oracle for differential
    /// tests of the incremental pruning.
    pub fn for_each_valid_order_reference(
        &self,
        mut on_valid: impl FnMut(&[usize]) -> bool,
    ) -> bool {
        let mut placed = Vec::with_capacity(self.num_events);
        let mut used = vec![false; self.num_events];
        self.extend_reference(&mut placed, &mut used, &mut on_valid)
    }

    /// Returns true if at least one valid memory order exists.
    #[must_use]
    pub fn has_valid_order(&self) -> bool {
        let mut found = false;
        self.for_each_valid_order(|_| {
            found = true;
            false
        });
        found
    }

    fn extend_reference(
        &self,
        placed: &mut Vec<usize>,
        used: &mut [bool],
        on_valid: &mut impl FnMut(&[usize]) -> bool,
    ) -> bool {
        if placed.len() == self.num_events {
            if self.validate_order(placed) {
                return on_valid(placed);
            }
            return true;
        }
        for event in 0..self.num_events {
            if used[event] {
                continue;
            }
            // Every required predecessor must already be placed.
            let ready = (0..self.num_events)
                .all(|other| !self.precede.contains(other, event) || used[other]);
            if !ready {
                continue;
            }
            used[event] = true;
            placed.push(event);
            let keep_going = self.extend_reference(placed, used, on_valid);
            placed.pop();
            used[event] = false;
            if !keep_going {
                return false;
            }
        }
        true
    }
}

/// The incremental backtracking state of one enumeration.
struct Search {
    placed: Vec<usize>,
    used: Vec<bool>,
    /// `position[e]` is the rank of `e`; only meaningful while `used[e]`.
    position: Vec<usize>,
    /// Direct successors per event (from the edge relation).
    successors: Vec<Vec<usize>>,
    /// Number of direct predecessors of each event not yet placed; an event
    /// is ready exactly when this hits zero.
    pred_remaining: Vec<usize>,
    /// Index into `MoProblem::loads` of the constraint of a load event.
    constraint_of: Vec<Option<usize>>,
    /// Per constraint: whether each event is a locally forwardable
    /// (`po_older_stores`) store of that load.
    po_older: Vec<Vec<bool>>,
    /// Per store event: the constraints whose address matches the store's.
    store_watch: Vec<Vec<usize>>,
}

impl Search {
    fn new(problem: &MoProblem) -> Self {
        let n = problem.num_events;
        let mut successors = vec![Vec::new(); n];
        let mut pred_remaining = vec![0usize; n];
        for (from, to) in problem.precede.iter_pairs() {
            successors[from].push(to);
            pred_remaining[to] += 1;
        }
        let mut constraint_of = vec![None; n];
        let mut po_older = Vec::with_capacity(problem.loads.len());
        let mut store_watch = vec![Vec::new(); n];
        for (ci, constraint) in problem.loads.iter().enumerate() {
            constraint_of[constraint.load] = Some(ci);
            let mut flags = vec![false; n];
            for &store in &constraint.po_older_stores {
                flags[store] = true;
            }
            po_older.push(flags);
            for (event, addr) in problem.store_addr.iter().enumerate() {
                if *addr == Some(constraint.addr) {
                    store_watch[event].push(ci);
                }
            }
        }
        Search {
            placed: Vec::with_capacity(n),
            used: vec![false; n],
            position: vec![0; n],
            successors,
            pred_remaining,
            constraint_of,
            po_older,
            store_watch,
        }
    }

    /// Checks the LoadValue obligations that placing `event` at the current
    /// rank already determines. Returning false prunes the whole subtree.
    fn placement_ok(&self, problem: &MoProblem, event: usize) -> bool {
        if let Some(ci) = self.constraint_of[event] {
            let constraint = &problem.loads[ci];
            match constraint.source {
                // Reading the initial value: no same-address store may be
                // memory-order-older, and every store placed so far is older.
                // (Forwardable stores were rejected before the search.)
                None => !problem
                    .store_addr
                    .iter()
                    .enumerate()
                    .any(|(e, addr)| *addr == Some(constraint.addr) && self.used[e]),
                Some(source) => {
                    // The source must already be a candidate: placed before
                    // the load or locally forwardable.
                    if !self.used[source] && !self.po_older[ci][source] {
                        return false;
                    }
                    // Every already-placed same-address store is a candidate
                    // and must not outrank a placed source. (If the source is
                    // an unplaced forwardable store it outranks them all.)
                    !self.used[source]
                        || problem.store_addr.iter().enumerate().all(|(e, addr)| {
                            e == source
                                || *addr != Some(constraint.addr)
                                || !self.used[e]
                                || self.position[e] < self.position[source]
                        })
                }
            }
        } else {
            // Placing a store after a load it could still serve: the store is
            // only a candidate of an already-placed load through forwarding,
            // and then it must not be placed after the load's placed source.
            self.store_watch[event].iter().all(|&ci| {
                let constraint = &problem.loads[ci];
                if !self.used[constraint.load] || !self.po_older[ci][event] {
                    return true;
                }
                match constraint.source {
                    // source == event: the forwarded source itself may land
                    // anywhere after its load.
                    Some(source) => source == event || !self.used[source],
                    None => false,
                }
            })
        }
    }

    fn extend(&mut self, problem: &MoProblem, on_valid: &mut impl FnMut(&[usize]) -> bool) -> bool {
        if self.placed.len() == problem.num_events {
            debug_assert!(problem.validate_order(&self.placed), "incremental pruning is unsound");
            return on_valid(&self.placed);
        }
        for event in 0..problem.num_events {
            if self.used[event] || self.pred_remaining[event] != 0 {
                continue;
            }
            if !self.placement_ok(problem, event) {
                continue;
            }
            self.position[event] = self.placed.len();
            self.used[event] = true;
            self.placed.push(event);
            for i in 0..self.successors[event].len() {
                self.pred_remaining[self.successors[event][i]] -= 1;
            }
            let keep_going = self.extend(problem, on_valid);
            for i in 0..self.successors[event].len() {
                self.pred_remaining[self.successors[event][i]] += 1;
            }
            self.placed.pop();
            self.used[event] = false;
            if !keep_going {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two stores (events 0, 1) to the same address and one load (event 2).
    fn two_stores_one_load(source: Option<usize>, po_older: Vec<usize>) -> MoProblem {
        MoProblem::new(
            3,
            Relation::new(3),
            vec![Some(8), Some(8), None],
            vec![LoadConstraint { load: 2, addr: 8, source, po_older_stores: po_older }],
        )
    }

    /// Collects the valid orders of both the incremental and the reference
    /// search and asserts they are identical (as sets).
    fn valid_orders(problem: &MoProblem) -> Vec<Vec<usize>> {
        let mut incremental = Vec::new();
        problem.for_each_valid_order(|o| {
            incremental.push(o.to_vec());
            true
        });
        let mut reference = Vec::new();
        problem.for_each_valid_order_reference(|o| {
            reference.push(o.to_vec());
            true
        });
        let mut a = incremental.clone();
        let mut b = reference;
        a.sort();
        b.sort();
        assert_eq!(a, b, "incremental and reference searches disagree");
        incremental
    }

    #[test]
    fn load_from_init_requires_no_older_store() {
        let problem = two_stores_one_load(None, vec![]);
        let orders = valid_orders(&problem);
        // The load must come first; the two stores may follow in either order.
        assert_eq!(orders.len(), 2);
        for order in &orders {
            assert_eq!(order[0], 2);
        }
    }

    #[test]
    fn load_from_store_requires_it_to_be_the_max() {
        let problem = two_stores_one_load(Some(0), vec![]);
        let orders = valid_orders(&problem);
        // Valid orders: store0 before load, store1 after the load OR before store0.
        // i.e. [0,2,1], [1,0,2]; invalid: [0,1,2], [1,2,0], [2,..].
        assert_eq!(orders.len(), 2);
        assert!(orders.contains(&vec![0, 2, 1]));
        assert!(orders.contains(&vec![1, 0, 2]));
    }

    #[test]
    fn po_older_store_participates_without_mo_edge() {
        // The load reads from store 0 which is po-older (forwarding); store 0
        // may then be anywhere, but store 1 must not sit between store 0 and
        // the load in a way that makes it the max of the candidate set.
        let problem = two_stores_one_load(Some(0), vec![0]);
        let orders = valid_orders(&problem);
        // All 6 permutations, minus the ones where store 1 is a candidate
        // newer than store 0: [1,2,0] keeps store1 older than the load but
        // store0 older still? position(1)<position(2): candidate; max must be 0.
        for order in &orders {
            let pos = |e: usize| order.iter().position(|&x| x == e).unwrap();
            let store1_candidate = pos(1) < pos(2);
            if store1_candidate {
                assert!(pos(1) < pos(0), "store 1 must be older than the forwarded store 0");
            }
        }
        assert!(orders.contains(&vec![2, 0, 1]), "forwarding lets the load precede its source");
    }

    #[test]
    fn forwarded_source_with_other_po_older_stores() {
        // Both stores are locally forwardable; the load reads store 1. Store 0
        // is always a candidate, so it must always be older than store 1.
        let problem = two_stores_one_load(Some(1), vec![0, 1]);
        let orders = valid_orders(&problem);
        assert!(!orders.is_empty());
        for order in &orders {
            let pos = |e: usize| order.iter().position(|&x| x == e).unwrap();
            assert!(pos(0) < pos(1), "store 0 must stay older than the source: {order:?}");
        }
    }

    #[test]
    fn precede_edges_are_respected() {
        let mut precede = Relation::new(3);
        precede.insert(0, 1);
        precede.insert(1, 2);
        let problem = MoProblem::new(
            3,
            precede,
            vec![Some(8), Some(8), None],
            vec![LoadConstraint { load: 2, addr: 8, source: Some(1), po_older_stores: vec![] }],
        );
        let orders = valid_orders(&problem);
        assert_eq!(orders, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn cyclic_edges_have_no_order() {
        let mut precede = Relation::new(2);
        precede.insert(0, 1);
        precede.insert(1, 0);
        let problem = MoProblem::new(2, precede, vec![Some(4), Some(4)], vec![]);
        assert!(!problem.has_valid_order());
        assert!(valid_orders(&problem).is_empty());
    }

    #[test]
    fn early_stop_works() {
        let problem = MoProblem::new(3, Relation::new(3), vec![None, None, None], vec![]);
        let mut count = 0;
        let completed = problem.for_each_valid_order(|_| {
            count += 1;
            count < 2
        });
        assert!(!completed);
        assert_eq!(count, 2);
    }

    #[test]
    fn loads_of_different_addresses_do_not_interfere() {
        let problem = MoProblem::new(
            2,
            Relation::new(2),
            vec![Some(16), None],
            vec![LoadConstraint { load: 1, addr: 32, source: None, po_older_stores: vec![] }],
        );
        let orders = valid_orders(&problem);
        assert_eq!(orders.len(), 2, "the store to a different address never blocks the init read");
    }

    #[test]
    fn has_valid_order_matches_enumeration() {
        let problem = two_stores_one_load(Some(1), vec![]);
        assert!(problem.has_valid_order());
        // A load reading from init while a po-older same-address store exists
        // (forwarding visible) can never validate.
        let impossible = two_stores_one_load(None, vec![0]);
        assert!(!impossible.has_valid_order());
        assert!(valid_orders(&impossible).is_empty());
    }

    #[test]
    fn randomized_problems_match_the_reference_search() {
        // Pseudo-random small problems: events are a mix of stores over two
        // addresses and loads with arbitrary (possibly unsatisfiable)
        // constraints plus random precedence edges. The incremental search
        // must produce exactly the reference's valid-order set on all of them
        // (checked inside `valid_orders`).
        let mut state = 0xDEAD_BEEFu64;
        let mut next = move |bound: u64| {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1442695040888963407);
            ((state >> 33) % bound) as usize
        };
        let mut nonempty = 0;
        for _ in 0..200 {
            let n = 3 + next(4); // 3..=6 events
            let mut store_addr = vec![None; n];
            let mut stores = Vec::new();
            let mut loads_events = Vec::new();
            for (e, slot) in store_addr.iter_mut().enumerate() {
                if next(2) == 0 {
                    *slot = Some(if next(2) == 0 { 8 } else { 16 });
                    stores.push(e);
                } else {
                    loads_events.push(e);
                }
            }
            let loads: Vec<LoadConstraint> = loads_events
                .iter()
                .map(|&load| {
                    let addr = if next(2) == 0 { 8 } else { 16 };
                    let same: Vec<usize> =
                        stores.iter().copied().filter(|&s| store_addr[s] == Some(addr)).collect();
                    let source = if same.is_empty() || next(3) == 0 {
                        None
                    } else {
                        Some(same[next(same.len() as u64)])
                    };
                    let po_older_stores: Vec<usize> =
                        same.iter().copied().filter(|_| next(3) == 0).collect();
                    LoadConstraint { load, addr, source, po_older_stores }
                })
                .collect();
            let mut precede = Relation::new(n);
            for _ in 0..next(4) {
                let i = next(n as u64);
                let j = next(n as u64);
                if i != j {
                    // Only forward edges, to keep some problems satisfiable.
                    precede.insert(i.min(j), i.max(j));
                }
            }
            let problem = MoProblem::new(n, precede, store_addr, loads);
            if !valid_orders(&problem).is_empty() {
                nonempty += 1;
            }
        }
        assert!(nonempty > 20, "random problems are not degenerate: {nonempty} satisfiable");
    }
}
