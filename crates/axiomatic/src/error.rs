//! Errors produced by the axiomatic checker.

use std::collections::BTreeSet;
use std::fmt;

use gam_core::StopReason;
use gam_isa::litmus::Outcome;

/// Errors that prevent a litmus test from being checked axiomatically.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckError {
    /// The axiomatic checker only handles straight-line programs; the paper's
    /// litmus tests never contain branches.
    BranchesUnsupported {
        /// The litmus test in question.
        test: String,
    },
    /// The program has more memory events than the configured search bound.
    TooManyEvents {
        /// The litmus test in question.
        test: String,
        /// Number of memory events in the program.
        events: usize,
        /// The configured maximum.
        limit: usize,
    },
    /// The enumeration stopped early because the checker's
    /// [`gam_core::Interrupt`] triggered — the shared cancel token was
    /// cancelled or the wall-clock budget ran out. The partial outcome set
    /// is a sound under-approximation of the allowed set.
    Interrupted {
        /// The litmus test in question.
        test: String,
        /// Why the enumeration stopped.
        reason: StopReason,
        /// The outcomes of the consistent executions visited before the
        /// stop.
        partial_outcomes: BTreeSet<Outcome>,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::BranchesUnsupported { test } => {
                write!(f, "litmus test `{test}` contains branches, which the axiomatic checker does not support")
            }
            CheckError::TooManyEvents { test, events, limit } => write!(
                f,
                "litmus test `{test}` has {events} memory events, more than the configured limit of {limit}"
            ),
            CheckError::Interrupted { test, reason, partial_outcomes } => write!(
                f,
                "litmus test `{test}` interrupted: {reason} \
                 ({} partial outcomes collected)",
                partial_outcomes.len()
            ),
        }
    }
}

impl std::error::Error for CheckError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = CheckError::BranchesUnsupported { test: "x".into() };
        assert!(err.to_string().contains("branches"));
        let err = CheckError::TooManyEvents { test: "x".into(), events: 20, limit: 14 };
        assert!(err.to_string().contains("20"));
        assert!(err.to_string().contains("14"));
        let err = CheckError::Interrupted {
            test: "x".into(),
            reason: StopReason::Cancelled,
            partial_outcomes: BTreeSet::new(),
        };
        assert!(err.to_string().contains("cancelled"));
        assert!(err.to_string().contains("0 partial outcomes"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<CheckError>();
    }
}
