//! Value propagation: turning a read-from assignment into a concrete execution.
//!
//! Given a read-from candidate for every load, this module computes every
//! register value, memory address and store datum by propagating values to a
//! fixpoint. Assignments whose values cannot be resolved (a cyclic value
//! dependency through read-from edges, the out-of-thin-air shape of Figure 5)
//! or whose addresses are inconsistent (a load "reading from" a store to a
//! different address) are rejected by returning `None`.

use std::collections::BTreeMap;

use gam_core::RfSource;
use gam_isa::litmus::LitmusTest;
use gam_isa::{Instruction, Operand, Program, Value};

use crate::execution::{ConcreteExecution, InstrRef, ProgramIndex, RfCandidate};

/// Per-instruction resolution state during propagation.
#[derive(Debug, Clone, Default)]
struct Slot {
    value: Option<Value>,
    address: Option<u64>,
}

/// Attempts to concretise an execution from a read-from assignment.
///
/// `assignment[i]` is the read-from candidate of `index.loads[i]`.
///
/// Returns `None` when the assignment is inconsistent: a value dependency
/// cycle prevents resolution, or a load is assigned a store to a different
/// address.
#[must_use]
pub fn concretize(
    test: &LitmusTest,
    index: &ProgramIndex,
    assignment: &[RfCandidate],
) -> Option<ConcreteExecution> {
    let program = test.program();
    let mut slots: Vec<Vec<Slot>> =
        program.threads().iter().map(|t| vec![Slot::default(); t.len()]).collect();

    // Fences produce no value; mark them resolved immediately so the fixpoint
    // terminates on the remaining instructions only.
    for (proc, idx, instr) in program.iter_instructions() {
        if instr.is_fence() {
            slots[proc.index()][idx].value = Some(Value::ZERO);
        }
    }

    let rf_of_load: BTreeMap<InstrRef, RfCandidate> =
        index.loads.iter().copied().zip(assignment.iter().copied()).collect();

    loop {
        let mut progress = false;
        for (proc, idx, instr) in program.iter_instructions() {
            let reference = InstrRef::new(proc.index(), idx);
            let slot = &slots[proc.index()][idx];
            if slot.value.is_some() && (slot.address.is_some() || !instr.is_memory()) {
                continue;
            }
            let (value, address) =
                evaluate(program, &slots, &rf_of_load, index, test, reference, instr);
            let slot = &mut slots[proc.index()][idx];
            if slot.value.is_none() && value.is_some() {
                slot.value = value;
                progress = true;
            }
            if slot.address.is_none() && address.is_some() {
                slot.address = address;
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }

    // Every instruction must be fully resolved.
    for (proc, idx, instr) in program.iter_instructions() {
        let slot = &slots[proc.index()][idx];
        slot.value?;
        if instr.is_memory() && slot.address.is_none() {
            return None;
        }
    }

    // Address consistency: a load must read from a store to the same address.
    for (load_ref, candidate) in &rf_of_load {
        if let RfCandidate::Store(sid) = candidate {
            let store_ref = index.stores[*sid];
            let load_addr = slots[load_ref.proc][load_ref.idx].address;
            let store_addr = slots[store_ref.proc][store_ref.idx].address;
            if load_addr != store_addr {
                return None;
            }
        }
    }

    let rf = rf_of_load
        .iter()
        .map(|(&load_ref, candidate)| {
            let source = match candidate {
                RfCandidate::Init => {
                    let addr = slots[load_ref.proc][load_ref.idx]
                        .address
                        .expect("resolved load has an address");
                    RfSource::Init(addr)
                }
                RfCandidate::Store(sid) => RfSource::Store(*sid as u32),
            };
            (load_ref, source)
        })
        .collect();

    Some(ConcreteExecution {
        values: slots
            .iter()
            .map(|thread| thread.iter().map(|s| s.value.expect("resolved")).collect())
            .collect(),
        addresses: slots.iter().map(|thread| thread.iter().map(|s| s.address).collect()).collect(),
        rf,
    })
}

/// Tries to compute the value and address of one instruction from the current
/// partial resolution. Returns `(value, address)` with `None` for parts that
/// are not yet computable.
fn evaluate(
    program: &Program,
    slots: &[Vec<Slot>],
    rf_of_load: &BTreeMap<InstrRef, RfCandidate>,
    index: &ProgramIndex,
    test: &LitmusTest,
    reference: InstrRef,
    instr: &Instruction,
) -> (Option<Value>, Option<u64>) {
    let operand = |op: &Operand| -> Option<Value> {
        match op {
            Operand::Imm(v) => Some(*v),
            Operand::Reg(reg) => {
                // Value of the youngest older writer of `reg`, or zero.
                let thread = &program.threads()[reference.proc];
                let writer = (0..reference.idx)
                    .rev()
                    .find(|&i| thread.instructions()[i].write_set().contains(reg));
                match writer {
                    Some(i) => slots[reference.proc][i].value,
                    None => Some(Value::ZERO),
                }
            }
        }
    };

    match instr {
        Instruction::Alu { op, lhs, rhs, .. } => {
            let value = match (operand(lhs), operand(rhs)) {
                (Some(a), Some(b)) => Some(op.apply(a, b)),
                _ => None,
            };
            (value, None)
        }
        Instruction::Load { addr, .. } => {
            let address = operand(&addr.base).map(|base| addr.evaluate(base).raw());
            let value = address.and_then(|resolved_addr| {
                match rf_of_load.get(&reference).copied().unwrap_or(RfCandidate::Init) {
                    RfCandidate::Init => Some(test.initial_value(resolved_addr)),
                    RfCandidate::Store(sid) => {
                        let store_ref = index.stores[sid];
                        slots[store_ref.proc][store_ref.idx].value
                    }
                }
            });
            (value, address)
        }
        Instruction::Store { addr, data } => {
            let address = operand(&addr.base).map(|base| addr.evaluate(base).raw());
            (operand(data), address)
        }
        Instruction::Fence { .. } => (Some(Value::ZERO), None),
        // Branches are rejected by the checker before propagation starts.
        Instruction::Branch { .. } => (None, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::library;
    use gam_isa::Loc;

    fn index_of(test: &LitmusTest) -> ProgramIndex {
        ProgramIndex::new(test.program())
    }

    #[test]
    fn dekker_init_reads_resolve_to_zero() {
        let test = library::dekker();
        let index = index_of(&test);
        // Both loads read the initial value.
        let exec = concretize(&test, &index, &[RfCandidate::Init, RfCandidate::Init]).unwrap();
        for &load in &index.loads {
            assert_eq!(exec.value(load), Value::ZERO);
        }
        // Both loads read the other processor's store.
        let exec =
            concretize(&test, &index, &[RfCandidate::Store(1), RfCandidate::Store(0)]).unwrap();
        for &load in &index.loads {
            assert_eq!(exec.value(load), Value::new(1));
        }
    }

    #[test]
    fn address_mismatch_is_rejected() {
        // In Dekker, load of `b` (load 0) cannot read from the store to `a` (store 0).
        let test = library::dekker();
        let index = index_of(&test);
        assert!(concretize(&test, &index, &[RfCandidate::Store(0), RfCandidate::Init]).is_none());
    }

    #[test]
    fn oota_cycle_is_rejected() {
        // Both loads reading from the other thread's dependent store forms a
        // value cycle, which propagation cannot resolve.
        let test = library::oota();
        let index = index_of(&test);
        assert!(
            concretize(&test, &index, &[RfCandidate::Store(1), RfCandidate::Store(0)]).is_none()
        );
        // Reading the initial values is fine and yields zeros.
        let exec = concretize(&test, &index, &[RfCandidate::Init, RfCandidate::Init]).unwrap();
        for &load in &index.loads {
            assert_eq!(exec.value(load), Value::ZERO);
        }
    }

    #[test]
    fn mp_addr_dependent_address_is_computed() {
        let test = library::mp_addr();
        let index = index_of(&test);
        let a = Loc::new("a");
        // Load of b reads the store of `a`'s address (store 1), the dependent
        // load then addresses `a` and reads store 0.
        let store_b =
            index.stores.iter().position(|s| s.proc == 0 && s.idx == 2).expect("store to b exists");
        let store_a =
            index.stores.iter().position(|s| s.proc == 0 && s.idx == 0).expect("store to a exists");
        let exec =
            concretize(&test, &index, &[RfCandidate::Store(store_b), RfCandidate::Store(store_a)])
                .unwrap();
        let dependent_load = index.loads[1];
        assert_eq!(exec.address(dependent_load), Some(a.address()));
        assert_eq!(exec.value(dependent_load), Value::new(1));
    }

    #[test]
    fn mp_addr_dependent_load_of_zero_address() {
        // If the first load reads the initial value 0, the dependent load
        // addresses location 0 and reads its initial value 0.
        let test = library::mp_addr();
        let index = index_of(&test);
        let exec = concretize(&test, &index, &[RfCandidate::Init, RfCandidate::Init]).unwrap();
        let dependent_load = index.loads[1];
        assert_eq!(exec.address(dependent_load), Some(0));
        assert_eq!(exec.value(dependent_load), Value::ZERO);
    }

    #[test]
    fn initial_memory_values_are_respected() {
        use gam_isa::{Addr, Operand as Op, ProcId, Reg, ThreadProgram};
        let a = Loc::new("a");
        let mut t0 = ThreadProgram::builder(ProcId::new(0));
        t0.load(Reg::new(1), Addr::loc(a));
        let program = gam_isa::Program::new(vec![t0.build()]);
        let test = LitmusTest::builder("init-demo", program)
            .init(a, 123u64)
            .expect_reg(ProcId::new(0), Reg::new(1), 123u64)
            .build();
        let index = index_of(&test);
        let exec = concretize(&test, &index, &[RfCandidate::Init]).unwrap();
        assert_eq!(exec.value(index.loads[0]), Value::new(123));
        // Keep the builder import used.
        let _ = Op::imm(0);
    }

    #[test]
    fn store_forwarding_values() {
        let test = library::store_forwarding();
        let index = index_of(&test);
        // The load reads the second store (r1 = 0 initially, so value 0).
        let exec = concretize(&test, &index, &[RfCandidate::Store(1)]).unwrap();
        assert_eq!(exec.value(index.loads[0]), Value::ZERO);
        // Or the first store, value 1.
        let exec = concretize(&test, &index, &[RfCandidate::Store(0)]).unwrap();
        assert_eq!(exec.value(index.loads[0]), Value::new(1));
    }

    #[test]
    fn rf_sources_are_recorded() {
        let test = library::corr();
        let index = index_of(&test);
        let exec = concretize(&test, &index, &[RfCandidate::Store(0), RfCandidate::Init]).unwrap();
        assert_eq!(exec.rf_source(index.loads[0]), Some(RfSource::Store(0)));
        assert_eq!(exec.rf_source(index.loads[1]), Some(RfSource::Init(Loc::new("a").address())));
    }
}
