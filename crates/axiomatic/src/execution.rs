//! Concrete executions: identifiers, read-from candidates and resolved values.

use std::collections::BTreeMap;
use std::fmt;

use gam_core::{ResolvedInstr, RfSource};
use gam_isa::{Instruction, Program, Value};

/// Identifies one static instruction instance: processor index plus
/// program-order index within that processor's thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstrRef {
    /// Processor (thread) index.
    pub proc: usize,
    /// Program-order index within the thread.
    pub idx: usize,
}

impl InstrRef {
    /// Creates an instruction reference.
    #[must_use]
    pub const fn new(proc: usize, idx: usize) -> Self {
        InstrRef { proc, idx }
    }
}

impl fmt::Display for InstrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}.I{}", self.proc + 1, self.idx + 1)
    }
}

/// A candidate read-from source for a load, before values are known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RfCandidate {
    /// The load reads the initial memory value of its (yet unknown) address.
    Init,
    /// The load reads from the store with the given index into
    /// [`ProgramIndex::stores`].
    Store(usize),
}

/// A static index of a program's loads and stores, assigning each store a
/// stable global identifier.
#[derive(Debug, Clone)]
pub struct ProgramIndex {
    /// All loads in the program, in (processor, program-order) order.
    pub loads: Vec<InstrRef>,
    /// All stores in the program, in (processor, program-order) order. The
    /// position in this vector is the store's global identifier.
    pub stores: Vec<InstrRef>,
    /// All memory instructions (loads and stores) in a fixed global order;
    /// the position in this vector is the instruction's *event index* used by
    /// the memory-order search.
    pub memory_events: Vec<InstrRef>,
}

impl ProgramIndex {
    /// Builds the index of a program.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mut loads = Vec::new();
        let mut stores = Vec::new();
        let mut memory_events = Vec::new();
        for (proc, idx, instr) in program.iter_instructions() {
            let reference = InstrRef::new(proc.index(), idx);
            if instr.is_load() {
                loads.push(reference);
                memory_events.push(reference);
            } else if instr.is_store() {
                stores.push(reference);
                memory_events.push(reference);
            }
        }
        ProgramIndex { loads, stores, memory_events }
    }

    /// Returns the global store identifier of the store at `reference`.
    #[must_use]
    pub fn store_id(&self, reference: InstrRef) -> Option<usize> {
        self.stores.iter().position(|&s| s == reference)
    }

    /// Returns the event index (position in [`ProgramIndex::memory_events`])
    /// of the memory instruction at `reference`.
    #[must_use]
    pub fn event_index(&self, reference: InstrRef) -> Option<usize> {
        self.memory_events.iter().position(|&e| e == reference)
    }
}

/// A fully concretised execution candidate: every instruction has a result
/// value, every memory instruction an address, and every load a read-from
/// source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcreteExecution {
    /// Per-thread, per-instruction result values (ALU destination value, load
    /// value, or store data).
    pub values: Vec<Vec<Value>>,
    /// Per-thread, per-instruction resolved addresses (only memory
    /// instructions have one).
    pub addresses: Vec<Vec<Option<u64>>>,
    /// Read-from source of every load.
    pub rf: BTreeMap<InstrRef, RfSource>,
}

impl ConcreteExecution {
    /// The result value of the instruction at `reference`.
    #[must_use]
    pub fn value(&self, reference: InstrRef) -> Value {
        self.values[reference.proc][reference.idx]
    }

    /// The resolved address of the memory instruction at `reference`.
    #[must_use]
    pub fn address(&self, reference: InstrRef) -> Option<u64> {
        self.addresses[reference.proc][reference.idx]
    }

    /// The read-from source of the load at `reference`.
    #[must_use]
    pub fn rf_source(&self, reference: InstrRef) -> Option<RfSource> {
        self.rf.get(&reference).copied()
    }

    /// Builds the resolved-instruction view of one thread, the input to
    /// `gam_core::preserved_program_order`.
    #[must_use]
    pub fn resolved_thread(&self, program: &Program, proc: usize) -> Vec<ResolvedInstr> {
        let thread = &program.threads()[proc];
        thread
            .instructions()
            .iter()
            .enumerate()
            .map(|(idx, instr)| {
                let reference = InstrRef::new(proc, idx);
                let addr = self.address(reference);
                let rf = self.rf_source(reference);
                resolve_one(instr, addr, rf)
            })
            .collect()
    }

    /// The final value of a register in a thread: the result of the youngest
    /// instruction writing it, or zero if it is never written.
    #[must_use]
    pub fn final_register_value(&self, program: &Program, proc: usize, reg: gam_isa::Reg) -> Value {
        let thread = &program.threads()[proc];
        thread
            .instructions()
            .iter()
            .enumerate()
            .rev()
            .find(|(_, instr)| instr.write_set().contains(&reg))
            .map(|(idx, _)| self.value(InstrRef::new(proc, idx)))
            .unwrap_or(Value::ZERO)
    }
}

fn resolve_one(instr: &Instruction, addr: Option<u64>, rf: Option<RfSource>) -> ResolvedInstr {
    ResolvedInstr::from_instruction(instr, addr, rf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::litmus::library;
    use gam_isa::{Addr, Loc, Operand, ProcId, Reg, ThreadProgram};

    #[test]
    fn instr_ref_display() {
        assert_eq!(InstrRef::new(0, 0).to_string(), "P1.I1");
        assert_eq!(InstrRef::new(2, 3).to_string(), "P3.I4");
    }

    #[test]
    fn program_index_counts_dekker() {
        let test = library::dekker();
        let index = ProgramIndex::new(test.program());
        assert_eq!(index.loads.len(), 2);
        assert_eq!(index.stores.len(), 2);
        assert_eq!(index.memory_events.len(), 4);
        for (i, &event) in index.memory_events.iter().enumerate() {
            assert_eq!(index.event_index(event), Some(i));
        }
        assert_eq!(index.store_id(index.stores[1]), Some(1));
        assert_eq!(index.store_id(InstrRef::new(0, 1)), None, "the load is not a store");
    }

    #[test]
    fn concrete_execution_accessors() {
        let a = Loc::new("a");
        let mut t0 = ThreadProgram::builder(ProcId::new(0));
        t0.store(Addr::loc(a), Operand::imm(7)).load(Reg::new(1), Addr::loc(a));
        let program = gam_isa::Program::new(vec![t0.build()]);
        let exec = ConcreteExecution {
            values: vec![vec![Value::new(7), Value::new(7)]],
            addresses: vec![vec![Some(a.address()), Some(a.address())]],
            rf: [(InstrRef::new(0, 1), RfSource::Store(0))].into_iter().collect(),
        };
        assert_eq!(exec.value(InstrRef::new(0, 0)), Value::new(7));
        assert_eq!(exec.address(InstrRef::new(0, 1)), Some(a.address()));
        assert_eq!(exec.rf_source(InstrRef::new(0, 1)), Some(RfSource::Store(0)));
        assert_eq!(exec.rf_source(InstrRef::new(0, 0)), None);
        assert_eq!(exec.final_register_value(&program, 0, Reg::new(1)), Value::new(7));
        assert_eq!(exec.final_register_value(&program, 0, Reg::new(9)), Value::ZERO);
        let resolved = exec.resolved_thread(&program, 0);
        assert_eq!(resolved.len(), 2);
        assert!(resolved[0].is_store());
        assert!(resolved[1].is_load());
        assert_eq!(resolved[1].rf_source(), Some(RfSource::Store(0)));
    }
}
