//! Property-based tests of relations, dependencies and preserved program
//! order.

use gam_core::{model, preserved_program_order, Relation, ResolvedInstr, ResolvedKind};
use gam_isa::Reg;
use proptest::prelude::*;

/// Strategy: a random relation over `n` elements given as an edge list.
fn relation(n: usize, edges: &[(usize, usize)]) -> Relation {
    let mut rel = Relation::new(n);
    for &(a, b) in edges {
        rel.insert(a % n.max(1), b % n.max(1));
    }
    rel
}

/// Strategy: a random straight-line thread of resolved instructions over two
/// addresses and four registers.
fn arbitrary_thread() -> impl Strategy<Value = Vec<ResolvedInstr>> {
    let instr = (0u8..5, 0u64..2, 0u32..4, 0u32..4).prop_map(|(kind, addr, dst, src)| {
        let address = 0x100 + addr * 8;
        match kind {
            0 => ResolvedInstr::from_parts(
                ResolvedKind::Load { addr: address, rf: None },
                vec![Reg::new(src)],
                vec![Reg::new(dst)],
                vec![Reg::new(src)],
                vec![],
            ),
            1 => ResolvedInstr::from_parts(
                ResolvedKind::Store { addr: address },
                vec![Reg::new(src), Reg::new(dst)],
                vec![],
                vec![Reg::new(src)],
                vec![Reg::new(dst)],
            ),
            2 => ResolvedInstr::from_parts(
                ResolvedKind::Fence(gam_isa::FenceKind::ALL[(addr % 4) as usize]),
                vec![],
                vec![],
                vec![],
                vec![],
            ),
            3 => ResolvedInstr::from_parts(
                ResolvedKind::Branch,
                vec![Reg::new(src)],
                vec![],
                vec![],
                vec![],
            ),
            _ => ResolvedInstr::from_parts(
                ResolvedKind::Alu,
                vec![Reg::new(src)],
                vec![Reg::new(dst)],
                vec![],
                vec![],
            ),
        }
    });
    proptest::collection::vec(instr, 0..8)
}

proptest! {
    /// Transitive closure is idempotent and only ever adds edges.
    #[test]
    fn closure_is_idempotent_and_extensive(
        n in 1usize..8,
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..20),
    ) {
        let rel = relation(n, &edges);
        let closed = rel.transitive_closure();
        prop_assert_eq!(closed.transitive_closure(), closed.clone());
        for (a, b) in rel.iter_pairs() {
            prop_assert!(closed.contains(a, b));
        }
    }

    /// A topological order exists exactly for acyclic relations, and respects
    /// every edge when it exists.
    #[test]
    fn topological_order_iff_acyclic(
        n in 1usize..8,
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..20),
    ) {
        let rel = relation(n, &edges);
        match rel.topological_order() {
            Some(order) => {
                prop_assert!(rel.is_acyclic());
                let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
                for (a, b) in rel.iter_pairs() {
                    prop_assert!(pos(a) < pos(b));
                }
            }
            None => prop_assert!(!rel.is_acyclic()),
        }
    }

    /// Preserved program order is always a subset of program order (edges only
    /// point forward), is acyclic, and is transitively closed — for every model.
    #[test]
    fn ppo_is_a_forward_closed_partial_order(thread in arbitrary_thread()) {
        for spec in model::all() {
            let ppo = preserved_program_order(&thread, &spec);
            for (i, j) in ppo.iter_pairs() {
                prop_assert!(i < j, "{}: edge {i}->{j} points backwards", spec.name());
            }
            prop_assert!(ppo.is_acyclic(), "{}", spec.name());
            prop_assert_eq!(ppo.transitive_closure(), ppo.clone());
        }
    }

    /// Model strength on ppo: SC preserves every pair TSO preserves, TSO every
    /// pair GAM preserves, GAM every pair GAM0 preserves (over the same
    /// resolved thread).
    #[test]
    fn ppo_is_monotone_across_model_strength(thread in arbitrary_thread()) {
        let sc = preserved_program_order(&thread, &model::sc());
        let tso = preserved_program_order(&thread, &model::tso());
        let gam = preserved_program_order(&thread, &model::gam());
        let gam0 = preserved_program_order(&thread, &model::gam0());
        for (i, j) in gam0.iter_pairs() {
            prop_assert!(gam.contains(i, j), "GAM0 edge {i}->{j} missing from GAM");
        }
        for (i, j) in gam.iter_pairs() {
            prop_assert!(tso.contains(i, j), "GAM edge {i}->{j} missing from TSO");
        }
        for (i, j) in tso.iter_pairs() {
            prop_assert!(sc.contains(i, j), "TSO edge {i}->{j} missing from SC");
        }
    }

    /// Under SC every pair of memory instructions is ordered.
    #[test]
    fn sc_orders_every_memory_pair(thread in arbitrary_thread()) {
        let sc = preserved_program_order(&thread, &model::sc());
        for j in 0..thread.len() {
            for i in 0..j {
                if thread[i].is_memory() && thread[j].is_memory() {
                    prop_assert!(sc.contains(i, j), "SC must order memory pair {i}->{j}");
                }
            }
        }
    }
}
