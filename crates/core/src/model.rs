//! The memory-model catalogue.
//!
//! A [`ModelSpec`] is a small bundle of choices that together determine the
//! axiomatic semantics of a model in the GAM family (plus the SC and TSO
//! baselines):
//!
//! * the [`BaseOrdering`]: which program-order pairs of memory instructions
//!   are unconditionally preserved (all for SC, all but store→load for TSO,
//!   only the constructed constraints of Figure 7 for the weak models);
//! * the [`SameAddrLoadLoad`] policy: unordered (GAM0 / RMO-like), ordered
//!   unless separated by a same-address store (GAM's constraint SALdLd), or
//!   ordered unless the two loads read from the same store (the ARM
//!   alternative `SALdLdARM`);
//! * whether a load may read a program-order-older local store that is not
//!   yet in the global memory order (store forwarding in the LoadValue axiom;
//!   true for TSO and the GAM family, false for SC).

use std::fmt;

/// The unconditional part of preserved program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseOrdering {
    /// Every pair of memory instructions stays ordered (SC, axiom InstOrderSC).
    Sc,
    /// Every pair except store→load stays ordered (TSO).
    Tso,
    /// Only the constraints constructed in Section III of the paper apply
    /// (the GAM family).
    Weak,
}

/// Policy for two program-order-adjacent loads of the same address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SameAddrLoadLoad {
    /// No ordering (GAM0, RMO); per-location SC is violated by CoRR.
    Unordered,
    /// Ordered unless an intervening same-address store separates them
    /// (GAM's constraint SALdLd).
    Ordered,
    /// Ordered unless both loads read from the same store (constraint
    /// SALdLdARM, Section III-E2).
    UnlessSameStore,
}

/// A label for the models the reproduction ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelKind {
    /// Sequential consistency.
    Sc,
    /// Total store order.
    Tso,
    /// The paper's General Atomic Memory Model.
    Gam,
    /// GAM without the same-address load-load constraint.
    Gam0,
    /// GAM with the ARM-style same-address rule instead of SALdLd.
    GamArm,
}

impl ModelKind {
    /// All model kinds in a fixed display order.
    pub const ALL: [ModelKind; 5] =
        [ModelKind::Sc, ModelKind::Tso, ModelKind::Gam, ModelKind::Gam0, ModelKind::GamArm];
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ModelKind::Sc => "SC",
            ModelKind::Tso => "TSO",
            ModelKind::Gam => "GAM",
            ModelKind::Gam0 => "GAM0",
            ModelKind::GamArm => "GAM-ARM",
        })
    }
}

/// A complete memory-model specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    kind: ModelKind,
    base: BaseOrdering,
    same_addr_load_load: SameAddrLoadLoad,
    load_value_local_bypass: bool,
}

impl ModelSpec {
    /// Creates a model specification from its parts.
    #[must_use]
    pub fn new(
        kind: ModelKind,
        base: BaseOrdering,
        same_addr_load_load: SameAddrLoadLoad,
        load_value_local_bypass: bool,
    ) -> Self {
        ModelSpec { kind, base, same_addr_load_load, load_value_local_bypass }
    }

    /// The model's label.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The model's display name.
    #[must_use]
    pub fn name(&self) -> String {
        self.kind.to_string()
    }

    /// The unconditional ordering baseline.
    #[must_use]
    pub fn base(&self) -> BaseOrdering {
        self.base
    }

    /// The same-address load-load policy.
    #[must_use]
    pub fn same_addr_load_load(&self) -> SameAddrLoadLoad {
        self.same_addr_load_load
    }

    /// Whether the LoadValue axiom lets a load read program-order-older local
    /// stores that are not yet in the global memory order (store forwarding).
    ///
    /// This is the `∨ St [a] v' <po Ld [a]` disjunct of axiom LoadValueGAM
    /// (Figure 15); SC's LoadValueSC axiom (Figure 3) does not have it.
    #[must_use]
    pub fn load_value_local_bypass(&self) -> bool {
        self.load_value_local_bypass
    }

    /// Returns true if the model orders same-address loads in some way
    /// (i.e. it has per-location SC).
    #[must_use]
    pub fn orders_same_address_loads(&self) -> bool {
        !matches!(self.same_addr_load_load, SameAddrLoadLoad::Unordered)
            || !matches!(self.base, BaseOrdering::Weak)
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)
    }
}

/// Sequential consistency (Figure 3 of the paper).
#[must_use]
pub fn sc() -> ModelSpec {
    ModelSpec::new(ModelKind::Sc, BaseOrdering::Sc, SameAddrLoadLoad::Ordered, false)
}

/// Total store order: store→load reordering with store forwarding.
#[must_use]
pub fn tso() -> ModelSpec {
    ModelSpec::new(ModelKind::Tso, BaseOrdering::Tso, SameAddrLoadLoad::Ordered, true)
}

/// The General Atomic Memory Model (Section III-E1, Figure 15).
#[must_use]
pub fn gam() -> ModelSpec {
    ModelSpec::new(ModelKind::Gam, BaseOrdering::Weak, SameAddrLoadLoad::Ordered, true)
}

/// GAM0: the base model of Section III-D, without constraint SALdLd.
#[must_use]
pub fn gam0() -> ModelSpec {
    ModelSpec::new(ModelKind::Gam0, BaseOrdering::Weak, SameAddrLoadLoad::Unordered, true)
}

/// GAM with the ARM-style `SALdLdARM` rule instead of SALdLd (Section III-E2).
#[must_use]
pub fn gam_arm() -> ModelSpec {
    ModelSpec::new(ModelKind::GamArm, BaseOrdering::Weak, SameAddrLoadLoad::UnlessSameStore, true)
}

/// Builds a model specification from its label.
#[must_use]
pub fn by_kind(kind: ModelKind) -> ModelSpec {
    match kind {
        ModelKind::Sc => sc(),
        ModelKind::Tso => tso(),
        ModelKind::Gam => gam(),
        ModelKind::Gam0 => gam0(),
        ModelKind::GamArm => gam_arm(),
    }
}

/// All models of the catalogue in display order.
#[must_use]
pub fn all() -> Vec<ModelSpec> {
    ModelKind::ALL.iter().map(|&k| by_kind(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_five_models() {
        let models = all();
        assert_eq!(models.len(), 5);
        let kinds: Vec<ModelKind> = models.iter().map(ModelSpec::kind).collect();
        assert_eq!(kinds, ModelKind::ALL.to_vec());
    }

    #[test]
    fn model_names() {
        assert_eq!(sc().name(), "SC");
        assert_eq!(tso().name(), "TSO");
        assert_eq!(gam().name(), "GAM");
        assert_eq!(gam0().name(), "GAM0");
        assert_eq!(gam_arm().name(), "GAM-ARM");
        assert_eq!(gam().to_string(), "GAM");
    }

    #[test]
    fn by_kind_round_trips() {
        for kind in ModelKind::ALL {
            assert_eq!(by_kind(kind).kind(), kind);
        }
    }

    #[test]
    fn sc_has_no_local_bypass() {
        assert!(!sc().load_value_local_bypass());
        assert!(tso().load_value_local_bypass());
        assert!(gam().load_value_local_bypass());
    }

    #[test]
    fn same_address_policies() {
        assert_eq!(gam().same_addr_load_load(), SameAddrLoadLoad::Ordered);
        assert_eq!(gam0().same_addr_load_load(), SameAddrLoadLoad::Unordered);
        assert_eq!(gam_arm().same_addr_load_load(), SameAddrLoadLoad::UnlessSameStore);
        assert!(gam().orders_same_address_loads());
        assert!(!gam0().orders_same_address_loads());
        assert!(gam_arm().orders_same_address_loads());
        assert!(sc().orders_same_address_loads());
    }

    #[test]
    fn bases() {
        assert_eq!(sc().base(), BaseOrdering::Sc);
        assert_eq!(tso().base(), BaseOrdering::Tso);
        assert_eq!(gam().base(), BaseOrdering::Weak);
        assert_eq!(gam0().base(), BaseOrdering::Weak);
        assert_eq!(gam_arm().base(), BaseOrdering::Weak);
    }
}
