//! Preserved program order (Definition 6 of the paper).
//!
//! `preserved_program_order` computes, for one thread of a resolved
//! execution, the relation `<ppo` relating the instructions whose execution
//! order must match the commit (program) order under a given model. For the
//! weak models this is the union of the constructed constraints of Figures 7
//! and 12 — SAMemSt, SAStLd, SALdLd (or SALdLdARM), RegRAW, BrSt, AddrSt and
//! FenceOrd — closed under transitivity; for the SC and TSO baselines the
//! corresponding unconditional orderings are added first.

use crate::dependency::{address_dependencies, data_dependencies};
use crate::model::{BaseOrdering, ModelSpec, SameAddrLoadLoad};
use crate::relation::Relation;
use crate::resolved::ResolvedInstr;

/// Computes `<ppo` for one thread under the given model.
///
/// The returned relation ranges over *all* instructions of the thread
/// (including ALU instructions, branches and fences); the transitive closure
/// is already applied, so chains through non-memory instructions (e.g.
/// load → ALU → ALU → load address dependencies, or load → fence → store)
/// appear as direct pairs. Callers interested only in memory instructions
/// can restrict the relation afterwards.
///
/// # Example
///
/// ```
/// use gam_core::{model, preserved_program_order, ResolvedInstr};
/// use gam_isa::{Addr, Instruction, Loc, Reg};
///
/// // The consumer of MP+addr: r1 = Ld [b]; r2 = Ld [r1]
/// let b = Loc::new("b");
/// let a = Loc::new("a");
/// let i1 = Instruction::Load { dst: Reg::new(1), addr: Addr::loc(b) };
/// let i2 = Instruction::Load { dst: Reg::new(2), addr: Addr::reg(Reg::new(1)) };
/// let thread = vec![
///     ResolvedInstr::from_instruction(&i1, Some(b.address()), None),
///     ResolvedInstr::from_instruction(&i2, Some(a.address()), None),
/// ];
/// let ppo = preserved_program_order(&thread, &model::gam0());
/// assert!(ppo.contains(0, 1), "the address dependency is preserved even by GAM0");
/// ```
#[must_use]
pub fn preserved_program_order(thread: &[ResolvedInstr], model: &ModelSpec) -> Relation {
    let n = thread.len();
    let mut ppo = Relation::new(n);
    let ddep = data_dependencies(thread);
    let adep = address_dependencies(thread);

    for j in 0..n {
        for i in 0..j {
            let older = &thread[i];
            let younger = &thread[j];

            if base_orders(model.base(), older, younger) {
                ppo.insert(i, j);
                continue;
            }

            // Constraint SAMemSt: any memory access before a same-address store.
            if younger.is_store() && older.is_memory() && older.same_address(younger) {
                ppo.insert(i, j);
                continue;
            }

            // Constraint RegRAW: direct data dependency.
            if ddep.contains(i, j) {
                ppo.insert(i, j);
                continue;
            }

            // Constraint BrSt: a store may not be issued before an older branch resolves.
            if older.is_branch() && younger.is_store() {
                ppo.insert(i, j);
                continue;
            }

            // Constraint AddrSt: a store may not be issued before the address of
            // any older memory instruction is known.
            if younger.is_store() && addr_st(thread, &adep, i, j) {
                ppo.insert(i, j);
                continue;
            }

            // Constraint SAStLd: a load that may forward from the immediately
            // preceding same-address store is ordered after the producers of
            // that store's address and data.
            if younger.is_load() && sa_st_ld(thread, &ddep, i, j) {
                ppo.insert(i, j);
                continue;
            }

            // Constraint SALdLd / SALdLdARM.
            if older.is_load()
                && younger.is_load()
                && older.same_address(younger)
                && same_addr_loads_ordered(model.same_addr_load_load(), thread, i, j)
            {
                ppo.insert(i, j);
                continue;
            }

            // Constraint FenceOrd.
            if fence_orders(older, younger) {
                ppo.insert(i, j);
            }
        }
    }

    ppo.transitive_closure()
}

/// The unconditional baseline orderings of SC and TSO.
fn base_orders(base: BaseOrdering, older: &ResolvedInstr, younger: &ResolvedInstr) -> bool {
    if !older.is_memory() || !younger.is_memory() {
        return false;
    }
    match base {
        BaseOrdering::Sc => true,
        BaseOrdering::Tso => !(older.is_store() && younger.is_load()),
        BaseOrdering::Weak => false,
    }
}

/// Constraint AddrSt: there is a memory instruction `m`, older than the store
/// `j`, whose address is produced by instruction `i`.
fn addr_st(thread: &[ResolvedInstr], adep: &Relation, i: usize, j: usize) -> bool {
    ((i + 1)..j).any(|m| thread[m].is_memory() && adep.contains(i, m))
}

/// Constraint SAStLd: `j` is a load; let `s` be the youngest store older than
/// `j` for the same address (with no other same-address store between `s` and
/// `j`); the constraint orders the producers of `s`'s address and data before
/// `j`, i.e. requires `i <ddep s`.
fn sa_st_ld(thread: &[ResolvedInstr], ddep: &Relation, i: usize, j: usize) -> bool {
    let Some(s) =
        ((i + 1)..j).rev().find(|&s| thread[s].is_store() && thread[s].same_address(&thread[j]))
    else {
        return false;
    };
    ddep.contains(i, s)
}

/// The same-address load-load policies of GAM (SALdLd) and ARM (SALdLdARM).
fn same_addr_loads_ordered(
    policy: SameAddrLoadLoad,
    thread: &[ResolvedInstr],
    i: usize,
    j: usize,
) -> bool {
    match policy {
        SameAddrLoadLoad::Unordered => false,
        SameAddrLoadLoad::Ordered => {
            // Ordered unless an intervening same-address store separates them.
            !((i + 1)..j).any(|k| thread[k].is_store() && thread[k].same_address(&thread[j]))
        }
        SameAddrLoadLoad::UnlessSameStore => {
            // Ordered unless both loads read from the same store.
            match (thread[i].rf_source(), thread[j].rf_source()) {
                (Some(a), Some(b)) => a != b,
                // Unknown read-from information: conservatively ordered.
                _ => true,
            }
        }
    }
}

/// Constraint FenceOrd: `FenceXY` is ordered after older type-X memory
/// instructions and before younger type-Y memory instructions.
fn fence_orders(older: &ResolvedInstr, younger: &ResolvedInstr) -> bool {
    if let (Some(kind), Some(ty)) = (older.fence_kind(), younger.mem_access_type()) {
        if kind.orders_younger(ty) {
            return true;
        }
    }
    if let (Some(ty), Some(kind)) = (older.mem_access_type(), younger.fence_kind()) {
        if kind.orders_older(ty) {
            return true;
        }
    }
    false
}

/// Restricts a ppo relation to pairs of memory instructions, which is the
/// form used by axiom InstOrder (memory order only contains loads and stores).
#[must_use]
pub fn memory_ppo(thread: &[ResolvedInstr], ppo: &Relation) -> Relation {
    ppo.restrict(|i| thread[i].is_memory())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;
    use crate::resolved::RfSource;
    use gam_isa::{Addr, AluOp, FenceKind, Instruction, Loc, Operand, Reg};

    fn r(i: u32) -> Reg {
        Reg::new(i)
    }

    fn load(dst: u32, loc: &str) -> ResolvedInstr {
        let l = Loc::new(loc);
        let i = Instruction::Load { dst: r(dst), addr: Addr::loc(l) };
        ResolvedInstr::from_instruction(&i, Some(l.address()), None)
    }

    fn load_rf(dst: u32, loc: &str, rf: RfSource) -> ResolvedInstr {
        let l = Loc::new(loc);
        let i = Instruction::Load { dst: r(dst), addr: Addr::loc(l) };
        ResolvedInstr::from_instruction(&i, Some(l.address()), Some(rf))
    }

    fn load_reg(dst: u32, addr_reg: u32, addr: u64) -> ResolvedInstr {
        let i = Instruction::Load { dst: r(dst), addr: Addr::reg(r(addr_reg)) };
        ResolvedInstr::from_instruction(&i, Some(addr), None)
    }

    fn store(loc: &str, data: Operand) -> ResolvedInstr {
        let l = Loc::new(loc);
        let i = Instruction::Store { addr: Addr::loc(l), data };
        ResolvedInstr::from_instruction(&i, Some(l.address()), None)
    }

    fn store_reg_addr(addr_reg: u32, addr: u64, data: Operand) -> ResolvedInstr {
        let i = Instruction::Store { addr: Addr::reg(r(addr_reg)), data };
        ResolvedInstr::from_instruction(&i, Some(addr), None)
    }

    fn fence(kind: FenceKind) -> ResolvedInstr {
        ResolvedInstr::from_instruction(&Instruction::Fence { kind }, None, None)
    }

    fn branch() -> ResolvedInstr {
        let i = Instruction::Branch {
            cond: gam_isa::BranchCond::Eq,
            lhs: Operand::reg(r(1)),
            rhs: Operand::imm(0),
            target: gam_isa::Label::new("l"),
        };
        ResolvedInstr::from_instruction(&i, None, None)
    }

    fn alu(dst: u32, srcs: (u32, u32)) -> ResolvedInstr {
        let i = Instruction::Alu {
            dst: r(dst),
            op: AluOp::Add,
            lhs: Operand::reg(r(srcs.0)),
            rhs: Operand::reg(r(srcs.1)),
        };
        ResolvedInstr::from_instruction(&i, None, None)
    }

    #[test]
    fn sc_orders_all_memory_pairs() {
        let thread = vec![store("a", Operand::imm(1)), load(1, "b"), store("c", Operand::imm(2))];
        let ppo = preserved_program_order(&thread, &model::sc());
        assert!(ppo.contains(0, 1));
        assert!(ppo.contains(1, 2));
        assert!(ppo.contains(0, 2));
    }

    #[test]
    fn tso_relaxes_store_to_load_only() {
        let thread = vec![store("a", Operand::imm(1)), load(1, "b")];
        let ppo = preserved_program_order(&thread, &model::tso());
        assert!(!ppo.contains(0, 1), "TSO relaxes store->load");
        let thread = vec![load(1, "b"), store("a", Operand::imm(1))];
        let ppo = preserved_program_order(&thread, &model::tso());
        assert!(ppo.contains(0, 1), "TSO keeps load->store");
        let thread = vec![store("a", Operand::imm(1)), store("b", Operand::imm(1))];
        let ppo = preserved_program_order(&thread, &model::tso());
        assert!(ppo.contains(0, 1), "TSO keeps store->store");
    }

    #[test]
    fn gam_relaxes_independent_pairs() {
        // Independent accesses to different addresses: no ordering under GAM.
        let thread = vec![store("a", Operand::imm(1)), load(1, "b")];
        assert!(!preserved_program_order(&thread, &model::gam()).contains(0, 1));
        let thread = vec![load(1, "b"), store("a", Operand::imm(1))];
        assert!(!preserved_program_order(&thread, &model::gam()).contains(0, 1));
        let thread = vec![store("a", Operand::imm(1)), store("b", Operand::imm(1))];
        assert!(!preserved_program_order(&thread, &model::gam()).contains(0, 1));
        let thread = vec![load(1, "a"), load(2, "b")];
        assert!(!preserved_program_order(&thread, &model::gam()).contains(0, 1));
    }

    #[test]
    fn sa_mem_st_orders_same_address_stores() {
        let thread = vec![store("a", Operand::imm(1)), store("a", Operand::imm(2))];
        assert!(preserved_program_order(&thread, &model::gam0()).contains(0, 1));
        let thread = vec![load(1, "a"), store("a", Operand::imm(2))];
        assert!(preserved_program_order(&thread, &model::gam0()).contains(0, 1));
    }

    #[test]
    fn reg_raw_orders_address_dependent_loads() {
        // r1 = Ld [b]; r2 = Ld [r1]  (MP+addr consumer)
        let b = Loc::new("b");
        let i1 = Instruction::Load { dst: r(1), addr: Addr::loc(b) };
        let thread = vec![
            ResolvedInstr::from_instruction(&i1, Some(b.address()), None),
            load_reg(2, 1, Loc::new("a").address()),
        ];
        for m in [model::gam(), model::gam0(), model::gam_arm()] {
            assert!(preserved_program_order(&thread, &m).contains(0, 1), "{}", m.name());
        }
    }

    #[test]
    fn artificial_dependency_chain_is_transitively_ordered() {
        // r1 = Ld [b]; r2 = add a, r1; r3 = sub r2, r1; r4 = Ld [r3]
        let thread = vec![
            load(1, "b"),
            alu(2, (1, 1)),
            alu(3, (2, 1)),
            load_reg(4, 3, Loc::new("a").address()),
        ];
        let ppo = preserved_program_order(&thread, &model::gam0());
        assert!(ppo.contains(0, 3), "transitivity through the ALU chain");
    }

    #[test]
    fn br_st_orders_stores_after_branches() {
        let thread = vec![branch(), store("a", Operand::imm(1))];
        assert!(preserved_program_order(&thread, &model::gam0()).contains(0, 1));
        // ... but not loads.
        let thread = vec![branch(), load(1, "a")];
        assert!(!preserved_program_order(&thread, &model::gam0()).contains(0, 1));
    }

    #[test]
    fn addr_st_orders_store_after_older_address_producer() {
        // r1 = Ld [a]; r2 = Ld [r1]; St [b] 1
        // The store must wait for the address of the older load (produced by I0).
        let thread = vec![
            load(1, "a"),
            load_reg(2, 1, Loc::new("c").address()),
            store("b", Operand::imm(1)),
        ];
        let ppo = preserved_program_order(&thread, &model::gam0());
        assert!(
            ppo.contains(0, 2),
            "AddrSt: I0 produces the address of I1 which is older than the store"
        );
    }

    #[test]
    fn sa_st_ld_orders_forwarding_producers() {
        // Figure 8: I1: St [a] 1 ; S: St [a] r1 ; I2: r2 = Ld [a]
        // r1 is produced by an older ALU; the load is ordered after that ALU.
        let thread = vec![
            alu(1, (9, 9)),
            store("a", Operand::imm(1)),
            store("a", Operand::reg(r(1))),
            load(2, "a"),
        ];
        let ppo = preserved_program_order(&thread, &model::gam0());
        assert!(ppo.contains(0, 3), "SAStLd orders the data producer of S before the load");
        assert!(
            !ppo.contains(1, 3),
            "no constraint between the older store I1 and the forwarded load"
        );
    }

    #[test]
    fn sa_ld_ld_gam_vs_gam0() {
        let thread = vec![load(1, "a"), load(2, "a")];
        assert!(preserved_program_order(&thread, &model::gam()).contains(0, 1));
        assert!(!preserved_program_order(&thread, &model::gam0()).contains(0, 1));
    }

    #[test]
    fn sa_ld_ld_not_applied_across_intervening_store() {
        // Figure 14b: Ld [b]; St [b] 2; Ld [b] — the two loads are NOT ordered by SALdLd.
        let thread = vec![load(1, "b"), store("b", Operand::imm(2)), load(2, "b")];
        let ppo = preserved_program_order(&thread, &model::gam());
        assert!(!ppo.contains(0, 2), "intervening same-address store removes the SALdLd edge");
        // The store itself is still ordered after the first load and the
        // second load reads from it (SAMemSt), but load-load stays relaxed.
        assert!(ppo.contains(0, 1));
    }

    #[test]
    fn sa_ld_ld_arm_depends_on_read_from() {
        let same = RfSource::Init(Loc::new("a").address());
        let thread = vec![load_rf(1, "a", same), load_rf(2, "a", same)];
        let ppo = preserved_program_order(&thread, &model::gam_arm());
        assert!(!ppo.contains(0, 1), "same store read: ARM leaves the loads unordered");

        let thread = vec![load_rf(1, "a", RfSource::Store(7)), load_rf(2, "a", same)];
        let ppo = preserved_program_order(&thread, &model::gam_arm());
        assert!(ppo.contains(0, 1), "different stores: ARM orders the loads");

        // Unknown read-from is conservatively ordered.
        let thread = vec![load(1, "a"), load(2, "a")];
        assert!(preserved_program_order(&thread, &model::gam_arm()).contains(0, 1));
    }

    #[test]
    fn fences_order_their_types_and_compose_transitively() {
        // Ld a; FenceLS; St b  =>  load before store via the fence.
        let thread = vec![load(1, "a"), fence(FenceKind::LS), store("b", Operand::imm(1))];
        let ppo = preserved_program_order(&thread, &model::gam());
        assert!(ppo.contains(0, 1));
        assert!(ppo.contains(1, 2));
        assert!(ppo.contains(0, 2));

        // FenceLS does not order store -> load.
        let thread = vec![store("a", Operand::imm(1)), fence(FenceKind::LS), load(1, "b")];
        let ppo = preserved_program_order(&thread, &model::gam());
        assert!(!ppo.contains(0, 2));

        // FenceSS orders store -> store.
        let thread =
            vec![store("a", Operand::imm(1)), fence(FenceKind::SS), store("b", Operand::imm(1))];
        assert!(preserved_program_order(&thread, &model::gam()).contains(0, 2));

        // FenceSL orders store -> load.
        let thread = vec![store("a", Operand::imm(1)), fence(FenceKind::SL), load(1, "b")];
        assert!(preserved_program_order(&thread, &model::gam()).contains(0, 2));

        // FenceLL orders load -> load.
        let thread = vec![load(1, "a"), fence(FenceKind::LL), load(2, "b")];
        assert!(preserved_program_order(&thread, &model::gam()).contains(0, 2));
    }

    #[test]
    fn two_fences_are_not_ordered_with_each_other() {
        let thread = vec![fence(FenceKind::LL), fence(FenceKind::SS)];
        let ppo = preserved_program_order(&thread, &model::gam());
        assert!(!ppo.contains(0, 1));
        assert!(!ppo.contains(1, 0));
    }

    #[test]
    fn memory_ppo_drops_non_memory_nodes() {
        let thread = vec![load(1, "a"), fence(FenceKind::LL), load(2, "b")];
        let ppo = preserved_program_order(&thread, &model::gam());
        let mem = memory_ppo(&thread, &ppo);
        assert!(mem.contains(0, 2));
        assert!(!mem.contains(0, 1));
        assert!(!mem.contains(1, 2));
    }

    #[test]
    fn store_data_dependency_orders_load_store() {
        // r1 = Ld [a]; St [b] r1  (the WRC producer): RegRAW orders them.
        let thread = vec![load(1, "a"), store("b", Operand::reg(r(1)))];
        for m in [model::gam(), model::gam0(), model::gam_arm()] {
            assert!(preserved_program_order(&thread, &m).contains(0, 1), "{}", m.name());
        }
    }

    #[test]
    fn store_address_dependency_counts_as_reg_raw() {
        // r1 = Ld [a]; St [r1] 7
        let thread = vec![load(1, "a"), store_reg_addr(1, 0x40, Operand::imm(7))];
        assert!(preserved_program_order(&thread, &model::gam0()).contains(0, 1));
    }

    #[test]
    fn ppo_is_contained_in_program_order() {
        // ppo never relates younger -> older.
        let thread = vec![
            store("a", Operand::imm(1)),
            fence(FenceKind::SS),
            store("b", Operand::imm(1)),
            load(1, "b"),
            load(2, "a"),
        ];
        for m in model::all() {
            let ppo = preserved_program_order(&thread, &m);
            for (i, j) in ppo.iter_pairs() {
                assert!(i < j, "{}: ppo edge {i}->{j} violates program order", m.name());
            }
        }
    }
}
