//! Live memory accounting for budget-aware exploration.
//!
//! The operational explorer holds its entire visited set in RAM: interned
//! state components, the flat id-row table, the DFS frontier and (under
//! reduction) per-state sleep-set bookkeeping. [`MemoryAccountant`] tracks
//! each of those categories as running byte totals so the explorer can poll a
//! single cheap sum on the same cadence as its interrupt checks and compare
//! it against a [`CheckBudget`-style](crate::interrupt::StopReason) memory
//! limit.
//!
//! The figures are *accounted* bytes — what the explorer knows it allocated —
//! not allocator-truth. That keeps them deterministic across runs (a
//! requirement for reproducible budget trips and checkpoint/resume) while
//! staying within a small constant factor of resident-set reality.
//! [`process_resident_bytes`] reads the OS view for watermark-style admission
//! control, where determinism does not matter.

/// Running byte totals for the memory consumed by one exploration,
/// broken down by data structure.
///
/// All figures are accounted (deterministic) bytes, not allocator truth.
/// Categories are set or adjusted by the owning data structures; [`total`]
/// sums the live categories and `spilled_bytes` tracks what has been moved
/// to disk (and therefore no longer counts against the in-RAM total).
///
/// [`total`]: MemoryAccountant::total
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryAccountant {
    /// Bytes held by interned state components (deduplicated memories and
    /// per-process states) in the component arena.
    pub component_bytes: usize,
    /// Bytes held by the resident portion of the flat u32 id-row table.
    pub id_table_bytes: usize,
    /// Estimated bytes held by the hash index over interned rows.
    pub index_bytes: usize,
    /// Bytes held by the DFS frontier / work stack.
    pub frontier_bytes: usize,
    /// Bytes held by sleep-set and expansion-cache bookkeeping
    /// (partial-order reduction only).
    pub sleep_bytes: usize,
    /// Bytes that have been spilled to disk (excluded from [`total`]).
    ///
    /// [`total`]: MemoryAccountant::total
    pub spilled_bytes: usize,
    /// Number of segment files written by the spill path.
    pub spill_segments: usize,
    /// High-water mark of [`total`] over the exploration's lifetime.
    ///
    /// [`total`]: MemoryAccountant::total
    pub peak_bytes: usize,
    /// Times the sleep-set caches were flushed under memory pressure.
    pub sleep_flushes: usize,
}

impl MemoryAccountant {
    /// A fresh accountant with every category at zero.
    #[must_use]
    pub fn new() -> Self {
        MemoryAccountant::default()
    }

    /// The current in-RAM total across all categories.
    #[must_use]
    pub fn total(&self) -> usize {
        self.component_bytes
            .saturating_add(self.id_table_bytes)
            .saturating_add(self.index_bytes)
            .saturating_add(self.frontier_bytes)
            .saturating_add(self.sleep_bytes)
    }

    /// Updates the high-water mark from the current total and returns the
    /// current total. Call after any batch of category updates.
    pub fn note_peak(&mut self) -> usize {
        let total = self.total();
        if total > self.peak_bytes {
            self.peak_bytes = total;
        }
        total
    }

    /// Records `bytes` moving from the id-table category to disk as one new
    /// spill segment.
    pub fn note_spill(&mut self, bytes: usize) {
        self.id_table_bytes = self.id_table_bytes.saturating_sub(bytes);
        self.spilled_bytes = self.spilled_bytes.saturating_add(bytes);
        self.spill_segments += 1;
    }
}

/// The process's resident-set size in bytes, read from the operating system.
///
/// Returns `None` when the figure is unavailable (non-Linux platforms, or a
/// malformed `/proc/self/statm`). This is allocator/OS truth — use it for
/// watermark-style admission control, not for deterministic budget checks.
#[must_use]
pub fn process_resident_bytes() -> Option<usize> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    // statm: size resident shared text lib data dt (pages)
    let resident_pages: usize = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages.saturating_mul(page_size()))
}

/// The system page size in bytes, defaulting to 4096 when undiscoverable.
fn page_size() -> usize {
    // Parse "KernelPageSize:        4 kB"-style lines are overkill; every
    // supported target uses 4 KiB pages unless configured otherwise, and a
    // wrong constant only skews the advisory RSS figure, never correctness.
    4096
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_live_categories_only() {
        let mut acct = MemoryAccountant::new();
        acct.component_bytes = 100;
        acct.id_table_bytes = 200;
        acct.index_bytes = 50;
        acct.frontier_bytes = 25;
        acct.sleep_bytes = 10;
        acct.spilled_bytes = 1_000_000; // on disk: not part of the RAM total
        assert_eq!(acct.total(), 385);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut acct = MemoryAccountant::new();
        acct.id_table_bytes = 500;
        assert_eq!(acct.note_peak(), 500);
        acct.id_table_bytes = 100;
        assert_eq!(acct.note_peak(), 100);
        assert_eq!(acct.peak_bytes, 500);
    }

    #[test]
    fn spill_moves_bytes_off_the_ram_total() {
        let mut acct = MemoryAccountant::new();
        acct.id_table_bytes = 1000;
        acct.note_peak();
        acct.note_spill(600);
        assert_eq!(acct.id_table_bytes, 400);
        assert_eq!(acct.spilled_bytes, 600);
        assert_eq!(acct.spill_segments, 1);
        assert_eq!(acct.total(), 400);
        assert_eq!(acct.peak_bytes, 1000);
    }

    #[test]
    fn resident_bytes_reads_something_plausible_on_linux() {
        if let Some(bytes) = process_resident_bytes() {
            // Any live process is at least a few pages resident.
            assert!(bytes > 4096, "implausible RSS {bytes}");
        }
    }
}
