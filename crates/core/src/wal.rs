//! Append-only, CRC-framed write-ahead-log primitives.
//!
//! Both crash-durability features of the toolchain — the serve crate's
//! journaled outcome cache and the engine's run checkpoints — need the same
//! storage shape: a file that is only ever *appended to*, where a `kill -9`
//! at any instruction loses at most the record being written, and where
//! startup recovers the longest valid prefix of whatever survived. This
//! module is that shape, shared so both layers get identical recovery
//! semantics and one set of tests for the framing.
//!
//! ## On-disk layout
//!
//! ```text
//! <magic line>\n                  # e.g. "gam-serve-journal/v1"
//! [len: u32 LE][crc32: u32 LE][payload bytes]   # frame 0
//! [len: u32 LE][crc32: u32 LE][payload bytes]   # frame 1
//! ...
//! ```
//!
//! `len` is the payload length and `crc32` is the IEEE CRC-32 of the payload
//! alone, so a frame is self-validating: a torn tail (partial header or
//! partial payload) and a corrupted frame (bit flip anywhere in header or
//! payload) are both detected, and [`scan`] stops at the first invalid
//! frame. Payload contents are opaque here — callers put one JSON record per
//! frame.
//!
//! ## Recovery contract
//!
//! [`Wal::open`] never fails on damage. A missing file is a cold start; a
//! wrong magic line abandons the file (warning) and starts fresh; a damaged
//! tail is truncated back to the longest valid prefix (warning) and
//! appending continues after it. Only genuine I/O errors (permissions, full
//! disk) surface as `Err`.
//!
//! There is deliberately no `fsync`: the threat model of the growth
//! trajectory is `kill -9` (process death), not power loss, and a completed
//! `write(2)` into the page cache survives the process. Keeping appends
//! sync-free is what lets the journaled cache stay on the serve hot path.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Largest accepted frame payload. A length field beyond this is treated as
/// corruption (it is far larger than any cache record or checkpoint row),
/// which stops [`scan`] from attempting a multi-gigabyte allocation off a
/// damaged header.
pub const MAX_FRAME: usize = 16 << 20;

const FRAME_HEADER: usize = 8;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut index = 0;
    while index < 256 {
        let mut crc = index as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[index] = crc;
        index += 1;
    }
    table
}

/// IEEE CRC-32 (the zlib/Ethernet polynomial) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

/// Encodes one frame: length + CRC header followed by the payload.
#[must_use]
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// The result of scanning a frame stream: the longest valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Payloads of every frame in the valid prefix, in order.
    pub frames: Vec<Vec<u8>>,
    /// Byte length of the valid prefix within the scanned slice; everything
    /// past it is damaged or torn.
    pub valid_len: usize,
    /// Human-readable description of the damage, when any was found.
    pub damage: Option<String>,
}

/// Scans `bytes` as a sequence of frames, stopping at the first torn or
/// corrupted one. Never panics on arbitrary input.
#[must_use]
pub fn scan(bytes: &[u8]) -> Recovery {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let mut damage = None;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER {
            damage = Some(format!("torn tail: {remaining}-byte partial frame header"));
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc =
            u32::from_le_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
        if len > MAX_FRAME {
            damage = Some(format!("corrupt frame header: length {len} exceeds {MAX_FRAME}"));
            break;
        }
        if remaining - FRAME_HEADER < len {
            damage = Some(format!(
                "torn tail: {} of {len} payload bytes present",
                remaining - FRAME_HEADER
            ));
            break;
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            damage = Some("corrupt frame: CRC mismatch".to_string());
            break;
        }
        frames.push(payload.to_vec());
        pos += FRAME_HEADER + len;
    }
    Recovery { frames, valid_len: pos, damage }
}

/// An open write-ahead log: a magic header line followed by CRC frames,
/// opened with its valid prefix recovered and positioned for appending.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    end: u64,
    header_len: u64,
}

impl Wal {
    /// Opens (or creates) the log at `path`, expecting the given magic line.
    ///
    /// Returns the log handle, the payloads of every recovered frame and an
    /// optional warning describing tolerated damage (wrong magic → file
    /// abandoned and restarted; torn/corrupt tail → truncated back to the
    /// longest valid prefix).
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (open, read, truncate, header write); any
    /// *content* problem is tolerated and reported via the warning.
    pub fn open(path: &Path, magic: &str) -> io::Result<(Wal, Vec<Vec<u8>>, Option<String>)> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let header = format!("{magic}\n");
        let mut warning = None;
        let (frames, end) = if bytes.is_empty() {
            file.write_all(header.as_bytes())?;
            (Vec::new(), header.len() as u64)
        } else if !bytes.starts_with(header.as_bytes()) {
            let first = bytes.split(|&b| b == b'\n').next().unwrap_or(&[]);
            warning = Some(format!(
                "journal {}: magic `{}` (want `{magic}`); starting a fresh journal",
                path.display(),
                String::from_utf8_lossy(first),
            ));
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(header.as_bytes())?;
            (Vec::new(), header.len() as u64)
        } else {
            let body = &bytes[header.len()..];
            let recovery = scan(body);
            let end = (header.len() + recovery.valid_len) as u64;
            if let Some(damage) = recovery.damage {
                warning = Some(format!(
                    "journal {}: {damage}; recovered {} records, truncating {} damaged bytes",
                    path.display(),
                    recovery.frames.len(),
                    bytes.len() as u64 - end,
                ));
                file.set_len(end)?;
            }
            (recovery.frames, end)
        };
        file.seek(SeekFrom::Start(end))?;
        let wal = Wal { path: path.to_path_buf(), file, end, header_len: header.len() as u64 };
        Ok((wal, frames, warning))
    }

    /// The path this log lives at.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes currently in the log, header included.
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.end
    }

    /// Appends one frame. The write is a single `write_all` into the page
    /// cache — durable against process death as soon as it returns.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error; the caller should treat the
    /// log as suspect afterwards (the frame may be partially on disk, which
    /// recovery handles as a torn tail).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let frame = encode_frame(payload);
        self.file.write_all(&frame)?;
        self.end += frame.len() as u64;
        Ok(())
    }

    /// Deliberately writes only a prefix of the frame — the fault-injection
    /// hook that simulates a crash mid-append. The log file now ends in a
    /// torn record exactly as a real `kill -9` would leave it; this handle
    /// must not be appended to again (reopen to recover).
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn append_torn(&mut self, payload: &[u8]) -> io::Result<()> {
        let frame = encode_frame(payload);
        let torn = frame.len() / 2;
        self.file.write_all(&frame[..torn.max(1)])?;
        Ok(())
    }

    /// Truncates the log back to just the magic header — the compaction
    /// step after the snapshot rename has made the records redundant.
    ///
    /// # Errors
    ///
    /// Propagates truncate/seek errors.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(self.header_len)?;
        self.end = self.header_len;
        self.file.seek(SeekFrom::Start(self.end))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scan_roundtrips_clean_frames() {
        let mut bytes = Vec::new();
        for payload in [b"alpha".as_slice(), b"", b"gamma-longer-record"] {
            bytes.extend_from_slice(&encode_frame(payload));
        }
        let recovery = scan(&bytes);
        assert_eq!(recovery.frames.len(), 3);
        assert_eq!(recovery.valid_len, bytes.len());
        assert!(recovery.damage.is_none());
        assert_eq!(recovery.frames[0], b"alpha");
        assert_eq!(recovery.frames[2], b"gamma-longer-record");
    }

    #[test]
    fn scan_stops_at_torn_and_corrupt_tails() {
        let mut bytes = encode_frame(b"kept");
        let keep = bytes.len();
        bytes.extend_from_slice(&encode_frame(b"damaged-soon"));
        // Truncate mid-second-frame: only the first survives.
        let torn = scan(&bytes[..bytes.len() - 3]);
        assert_eq!(torn.frames, vec![b"kept".to_vec()]);
        assert_eq!(torn.valid_len, keep);
        assert!(torn.damage.is_some());
        // Flip a payload bit in the second frame: same outcome.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        let recovered = scan(&flipped);
        assert_eq!(recovered.frames, vec![b"kept".to_vec()]);
        assert!(recovered.damage.unwrap().contains("CRC"));
    }

    #[test]
    fn wal_recovers_longest_prefix_and_keeps_appending() {
        let dir = std::env::temp_dir().join(format!("gam-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recover.wal");
        let _ = std::fs::remove_file(&path);

        let (mut wal, frames, warning) = Wal::open(&path, "gam-test-wal/v1").unwrap();
        assert!(frames.is_empty());
        assert!(warning.is_none());
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.append_torn(b"torn-by-crash").unwrap();
        drop(wal);

        let (mut wal, frames, warning) = Wal::open(&path, "gam-test-wal/v1").unwrap();
        assert_eq!(frames, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(warning.unwrap().contains("torn"));
        wal.append(b"three").unwrap();
        drop(wal);

        let (mut wal, frames, warning) = Wal::open(&path, "gam-test-wal/v1").unwrap();
        assert_eq!(frames, vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]);
        assert!(warning.is_none());

        // A wrong magic abandons the content entirely.
        wal.reset().unwrap();
        drop(wal);
        let (_wal, frames, warning) = Wal::open(&path, "gam-test-wal/v2").unwrap();
        assert!(frames.is_empty());
        assert!(warning.unwrap().contains("magic"));
        std::fs::remove_file(&path).ok();
    }
}
