//! Syntactic data and address dependencies (Definitions 4 and 5 of the paper).
//!
//! Both dependencies relate instructions of a single thread: `I1 <ddep I2`
//! holds when `I2` reads a register whose *last* writer before `I2` is `I1`
//! (read-after-write with no intervening overwrite), and `I1 <adep I2` is the
//! restriction of the same condition to the registers `I2` uses to compute
//! its memory address. Address dependency implies data dependency.

use gam_isa::Reg;

use crate::relation::Relation;
use crate::resolved::ResolvedInstr;

/// Generic "last writer" dependency: relates `I1 <dep I2` when some register
/// in `reads(I2)` has `I1` as its most recent program-order writer.
fn last_writer_dependency(
    thread: &[ResolvedInstr],
    reads: impl Fn(&ResolvedInstr) -> &[Reg],
) -> Relation {
    let n = thread.len();
    let mut rel = Relation::new(n);
    for (j, consumer) in thread.iter().enumerate() {
        for &reg in reads(consumer) {
            // Find the youngest older instruction writing `reg`.
            let writer = (0..j).rev().find(|&i| thread[i].write_set().contains(&reg));
            if let Some(i) = writer {
                rel.insert(i, j);
            }
        }
    }
    rel
}

/// Computes the data-dependency relation `<ddep` (Definition 4) over the
/// instructions of one thread, identified by their program-order indices.
///
/// `I1 <ddep I2` iff `I1 <po I2`, `WS(I1) ∩ RS(I2) ≠ ∅`, and for some register
/// `r` in the intersection no instruction between `I1` and `I2` writes `r`.
///
/// # Example
///
/// ```
/// use gam_core::{data_dependencies, ResolvedInstr};
/// use gam_isa::{Addr, Instruction, Reg};
/// // r1 = Ld [a]; r2 = Ld [r1]
/// let a = gam_isa::Loc::new("a");
/// let load1 = Instruction::Load { dst: Reg::new(1), addr: Addr::loc(a) };
/// let load2 = Instruction::Load { dst: Reg::new(2), addr: Addr::reg(Reg::new(1)) };
/// let thread = vec![
///     ResolvedInstr::from_instruction(&load1, Some(a.address()), None),
///     ResolvedInstr::from_instruction(&load2, Some(0), None),
/// ];
/// let ddep = data_dependencies(&thread);
/// assert!(ddep.contains(0, 1));
/// ```
#[must_use]
pub fn data_dependencies(thread: &[ResolvedInstr]) -> Relation {
    last_writer_dependency(thread, ResolvedInstr::read_set)
}

/// Computes the address-dependency relation `<adep` (Definition 5) over the
/// instructions of one thread.
///
/// `I1 <adep I2` iff `I1 <po I2`, `WS(I1) ∩ ARS(I2) ≠ ∅`, and for some
/// register `r` in the intersection no instruction between `I1` and `I2`
/// writes `r`. Address dependency implies data dependency.
#[must_use]
pub fn address_dependencies(thread: &[ResolvedInstr]) -> Relation {
    last_writer_dependency(thread, ResolvedInstr::addr_read_set)
}

/// Computes the dependency from producers to the *data* operand of stores:
/// `I1 <sdep I2` when `I2` is a store and `I1` is the last writer of one of
/// the registers feeding the store data. Used by constraint SAStLd.
#[must_use]
pub fn store_data_dependencies(thread: &[ResolvedInstr]) -> Relation {
    last_writer_dependency(thread, ResolvedInstr::data_read_set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolved::ResolvedKind;
    use gam_isa::{Addr, AluOp, Instruction, Loc, Operand};

    fn r(i: u32) -> Reg {
        Reg::new(i)
    }

    fn resolve(instr: &Instruction, addr: Option<u64>) -> ResolvedInstr {
        ResolvedInstr::from_instruction(instr, addr, None)
    }

    /// r1 = Ld [a]; r2 = a + r1; r3 = r2 - r1; r4 = Ld [r3]
    fn artificial_dep_thread() -> Vec<ResolvedInstr> {
        let a = Loc::new("a");
        let i1 = Instruction::Load { dst: r(1), addr: Addr::loc(a) };
        let i2 = Instruction::Alu {
            dst: r(2),
            op: AluOp::Add,
            lhs: Operand::loc(a),
            rhs: Operand::reg(r(1)),
        };
        let i3 = Instruction::Alu {
            dst: r(3),
            op: AluOp::Sub,
            lhs: Operand::reg(r(2)),
            rhs: Operand::reg(r(1)),
        };
        let i4 = Instruction::Load { dst: r(4), addr: Addr::reg(r(3)) };
        vec![
            resolve(&i1, Some(a.address())),
            resolve(&i2, None),
            resolve(&i3, None),
            resolve(&i4, Some(a.address())),
        ]
    }

    #[test]
    fn direct_data_dependency() {
        let thread = artificial_dep_thread();
        let ddep = data_dependencies(&thread);
        assert!(ddep.contains(0, 1), "load feeds the add");
        assert!(ddep.contains(0, 2), "load feeds the sub via r1");
        assert!(ddep.contains(1, 2), "add feeds the sub via r2");
        assert!(ddep.contains(2, 3), "sub feeds the final load address");
        assert!(!ddep.contains(0, 3), "no direct register from load to final load");
        assert!(!ddep.contains(3, 0), "dependencies never point backwards");
    }

    #[test]
    fn address_dependency_restricted_to_address_registers() {
        let thread = artificial_dep_thread();
        let adep = address_dependencies(&thread);
        assert!(adep.contains(2, 3), "sub produces the address of the final load");
        assert!(!adep.contains(0, 1), "the add is not a memory instruction");
        assert!(!adep.contains(1, 3), "r2 is not the address register of the final load");
    }

    #[test]
    fn overwrite_breaks_dependency() {
        // r1 = Ld [a]; r1 = mov 7; r2 = Ld [r1]
        let a = Loc::new("a");
        let i1 = Instruction::Load { dst: r(1), addr: Addr::loc(a) };
        let i2 = Instruction::Alu {
            dst: r(1),
            op: AluOp::Mov,
            lhs: Operand::imm(7),
            rhs: Operand::imm(0),
        };
        let i3 = Instruction::Load { dst: r(2), addr: Addr::reg(r(1)) };
        let thread =
            vec![resolve(&i1, Some(a.address())), resolve(&i2, None), resolve(&i3, Some(7))];
        let ddep = data_dependencies(&thread);
        assert!(!ddep.contains(0, 2), "the mov overwrote r1, killing the dependency");
        assert!(ddep.contains(1, 2), "the mov is the last writer of r1");
    }

    #[test]
    fn store_data_dependency() {
        // r1 = Ld [a]; St [b] r1
        let a = Loc::new("a");
        let b = Loc::new("b");
        let i1 = Instruction::Load { dst: r(1), addr: Addr::loc(a) };
        let i2 = Instruction::Store { addr: Addr::loc(b), data: Operand::reg(r(1)) };
        let thread = vec![resolve(&i1, Some(a.address())), resolve(&i2, Some(b.address()))];
        let sdep = store_data_dependencies(&thread);
        assert!(sdep.contains(0, 1));
        let adep = address_dependencies(&thread);
        assert!(!adep.contains(0, 1), "the store address is a constant");
        let ddep = data_dependencies(&thread);
        assert!(ddep.contains(0, 1), "store data is part of the read set");
    }

    #[test]
    fn no_dependency_between_independent_instructions() {
        let a = Loc::new("a");
        let i1 = Instruction::Load { dst: r(1), addr: Addr::loc(a) };
        let i2 = Instruction::Load { dst: r(2), addr: Addr::loc(a) };
        let thread = vec![resolve(&i1, Some(a.address())), resolve(&i2, Some(a.address()))];
        let ddep = data_dependencies(&thread);
        assert_eq!(ddep.edge_count(), 0);
    }

    #[test]
    fn empty_thread_has_empty_relations() {
        let thread: Vec<ResolvedInstr> = Vec::new();
        assert_eq!(data_dependencies(&thread).edge_count(), 0);
        assert_eq!(address_dependencies(&thread).edge_count(), 0);
    }

    #[test]
    fn dependency_on_synthetic_parts() {
        // A synthetic ALU that reads r5 and writes r6, consumed by a store's address.
        let producer =
            ResolvedInstr::from_parts(ResolvedKind::Alu, vec![r(5)], vec![r(6)], vec![], vec![]);
        let consumer = ResolvedInstr::from_parts(
            ResolvedKind::Store { addr: 32 },
            vec![r(6), r(7)],
            vec![],
            vec![r(6)],
            vec![r(7)],
        );
        let thread = vec![producer, consumer];
        assert!(data_dependencies(&thread).contains(0, 1));
        assert!(address_dependencies(&thread).contains(0, 1));
        assert!(!store_data_dependencies(&thread).contains(0, 1));
    }
}
