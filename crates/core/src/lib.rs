//! # gam-core
//!
//! The memory-model core of the GAM reproduction. This crate turns the
//! constructions of Sections III and IV-A of *Constructing a Weak Memory
//! Model* (ISCA 2018) into executable definitions:
//!
//! * [`relation`] — dense binary relations over instruction indices with
//!   transitive closure and cycle detection, the workhorse of both the
//!   preserved-program-order computation and the axiomatic checker;
//! * [`resolved`] — *resolved instructions*: an instruction instance whose
//!   memory address (and, for loads, read-from source) is known. Preserved
//!   program order depends on concrete addresses ("same address" in
//!   Definition 6), so it is defined over resolved instructions rather than
//!   static ones;
//! * [`dependency`] — the syntactic data and address dependencies `<ddep` and
//!   `<adep` of Definitions 4 and 5;
//! * [`ppo`] — preserved program order (Definition 6) for the whole model
//!   family: the GAM constraints (SAMemSt, SAStLd, SALdLd, RegRAW, BrSt,
//!   AddrSt, FenceOrd, transitivity), the ARM alternative `SALdLdARM`, and the
//!   stronger SC / TSO baselines;
//! * [`model`] — the model catalogue: [`model::ModelSpec`] bundles a base
//!   ordering, a same-address load-load policy and a load-value rule, and the
//!   constructors [`model::sc`], [`model::tso`], [`model::gam`],
//!   [`model::gam0`], [`model::gam_arm`] produce the five models the
//!   reproduction compares.
//!
//! # Example
//!
//! ```
//! use gam_core::model;
//!
//! let gam = model::gam();
//! assert!(gam.orders_same_address_loads());
//! let gam0 = model::gam0();
//! assert!(!gam0.orders_same_address_loads());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dependency;
pub mod fault;
pub mod interrupt;
pub mod memory;
pub mod model;
pub mod ppo;
pub mod relation;
pub mod resolved;
pub mod wal;

pub use dependency::{address_dependencies, data_dependencies};
pub use interrupt::{CancelToken, Interrupt, StopReason};
pub use memory::MemoryAccountant;
pub use model::{BaseOrdering, ModelKind, ModelSpec, SameAddrLoadLoad};
pub use ppo::preserved_program_order;
pub use relation::Relation;
pub use resolved::{ResolvedInstr, ResolvedKind, RfSource};
