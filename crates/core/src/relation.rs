//! Dense binary relations over a small index set.
//!
//! Litmus-test threads and executions contain at most a few dozen
//! instructions, so relations are represented as dense boolean matrices. The
//! operations provided are exactly the ones the memory-model definitions
//! need: union, composition-free transitive closure, acyclicity and
//! topological iteration.

use std::fmt;

/// A binary relation over the index set `0..len`.
///
/// # Example
///
/// ```
/// use gam_core::Relation;
/// let mut r = Relation::new(3);
/// r.insert(0, 1);
/// r.insert(1, 2);
/// let closed = r.transitive_closure();
/// assert!(closed.contains(0, 2));
/// assert!(closed.is_acyclic());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    len: usize,
    bits: Vec<bool>,
}

impl Relation {
    /// Creates the empty relation over `0..len`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Relation { len, bits: vec![false; len * len] }
    }

    /// Number of elements of the underlying index set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if the index set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds the pair `(from, to)` to the relation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn insert(&mut self, from: usize, to: usize) {
        assert!(from < self.len && to < self.len, "relation index out of range");
        self.bits[from * self.len + to] = true;
    }

    /// Removes the pair `(from, to)` from the relation.
    pub fn remove(&mut self, from: usize, to: usize) {
        assert!(from < self.len && to < self.len, "relation index out of range");
        self.bits[from * self.len + to] = false;
    }

    /// Returns true if the pair `(from, to)` is in the relation.
    #[must_use]
    pub fn contains(&self, from: usize, to: usize) -> bool {
        from < self.len && to < self.len && self.bits[from * self.len + to]
    }

    /// Number of pairs in the relation.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// Iterates over all pairs in the relation.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.len)
            .flat_map(move |i| (0..self.len).map(move |j| (i, j)))
            .filter(move |&(i, j)| self.contains(i, j))
    }

    /// Returns the union of two relations over the same index set.
    ///
    /// # Panics
    ///
    /// Panics if the index sets differ in size.
    #[must_use]
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.len, other.len, "relation size mismatch");
        let bits = self.bits.iter().zip(&other.bits).map(|(a, b)| *a || *b).collect();
        Relation { len: self.len, bits }
    }

    /// In-place union with another relation over the same index set.
    pub fn union_with(&mut self, other: &Relation) {
        assert_eq!(self.len, other.len, "relation size mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a = *a || *b;
        }
    }

    /// Returns the transitive closure of the relation (Floyd–Warshall).
    #[must_use]
    pub fn transitive_closure(&self) -> Relation {
        let mut closed = self.clone();
        let n = self.len;
        for k in 0..n {
            for i in 0..n {
                if closed.bits[i * n + k] {
                    for j in 0..n {
                        if closed.bits[k * n + j] {
                            closed.bits[i * n + j] = true;
                        }
                    }
                }
            }
        }
        closed
    }

    /// Returns true if the relation contains no cycle (and no self-loop).
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        let closed = self.transitive_closure();
        (0..self.len).all(|i| !closed.contains(i, i))
    }

    /// Returns a topological ordering of the index set consistent with the
    /// relation, or `None` if the relation is cyclic.
    #[must_use]
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.len;
        let mut indegree = vec![0usize; n];
        for (_, to) in self.iter_pairs() {
            indegree[to] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(node) = ready.pop() {
            order.push(node);
            for (next, degree) in indegree.iter_mut().enumerate() {
                if self.contains(node, next) {
                    *degree -= 1;
                    if *degree == 0 {
                        ready.push(next);
                    }
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Restricts the relation to the pairs where both ends satisfy `keep`,
    /// returning a relation over the same index set.
    #[must_use]
    pub fn restrict(&self, keep: impl Fn(usize) -> bool) -> Relation {
        let mut out = Relation::new(self.len);
        for (from, to) in self.iter_pairs() {
            if keep(from) && keep(to) {
                out.insert(from, to);
            }
        }
        out
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation({} elems, {{", self.len)?;
        let mut first = true;
        for (i, j) in self.iter_pairs() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{i}->{j}")?;
            first = false;
        }
        write!(f, "}})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::len_zero)]
    fn insert_contains_remove() {
        let mut r = Relation::new(4);
        assert!(!r.contains(1, 2));
        r.insert(1, 2);
        assert!(r.contains(1, 2));
        assert_eq!(r.edge_count(), 1);
        r.remove(1, 2);
        assert!(!r.contains(1, 2));
        assert_eq!(r.edge_count(), 0);
        // is_empty refers to the index set, not the edge set, and must stay
        // consistent with len().
        assert!(!r.is_empty());
        assert_eq!(r.is_empty(), r.len() == 0);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let r = Relation::new(2);
        assert!(!r.contains(5, 0));
        assert!(!r.contains(0, 5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut r = Relation::new(2);
        r.insert(2, 0);
    }

    #[test]
    fn transitive_closure_chains() {
        let mut r = Relation::new(4);
        r.insert(0, 1);
        r.insert(1, 2);
        r.insert(2, 3);
        let c = r.transitive_closure();
        assert!(c.contains(0, 3));
        assert!(c.contains(1, 3));
        assert!(!c.contains(3, 0));
        // closure of an acyclic relation stays acyclic
        assert!(c.is_acyclic());
    }

    #[test]
    fn cycle_detection() {
        let mut r = Relation::new(3);
        r.insert(0, 1);
        r.insert(1, 2);
        assert!(r.is_acyclic());
        r.insert(2, 0);
        assert!(!r.is_acyclic());
        assert!(r.topological_order().is_none());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut r = Relation::new(2);
        r.insert(1, 1);
        assert!(!r.is_acyclic());
    }

    #[test]
    fn union_merges_edges() {
        let mut a = Relation::new(3);
        a.insert(0, 1);
        let mut b = Relation::new(3);
        b.insert(1, 2);
        let u = a.union(&b);
        assert!(u.contains(0, 1) && u.contains(1, 2));
        let mut c = a.clone();
        c.union_with(&b);
        assert_eq!(c, u);
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut r = Relation::new(5);
        r.insert(0, 2);
        r.insert(1, 2);
        r.insert(2, 3);
        r.insert(3, 4);
        let order = r.topological_order().expect("acyclic");
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        for (i, j) in r.iter_pairs() {
            assert!(pos(i) < pos(j), "{i} must precede {j}");
        }
    }

    #[test]
    fn restrict_keeps_only_selected_nodes() {
        let mut r = Relation::new(4);
        r.insert(0, 1);
        r.insert(1, 2);
        r.insert(2, 3);
        let restricted = r.restrict(|i| i != 1);
        assert!(!restricted.contains(0, 1));
        assert!(!restricted.contains(1, 2));
        assert!(restricted.contains(2, 3));
    }

    #[test]
    fn iter_pairs_matches_contains() {
        let mut r = Relation::new(3);
        r.insert(2, 0);
        r.insert(0, 1);
        let pairs: Vec<_> = r.iter_pairs().collect();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(2, 0)));
        assert!(pairs.contains(&(0, 1)));
    }

    #[test]
    fn debug_output_lists_edges() {
        let mut r = Relation::new(2);
        r.insert(0, 1);
        let text = format!("{r:?}");
        assert!(text.contains("0->1"));
    }
}
