//! Dense binary relations over a small index set.
//!
//! Litmus-test threads and executions contain at most a few dozen
//! instructions, so relations are represented as dense bit matrices. Rows are
//! packed into `u64` words, which lets the hot operations — union, transitive
//! closure, acyclicity — run word-parallel: a closure step ORs whole rows (64
//! pairs at a time) instead of testing bits one by one, turning the O(n³)
//! Floyd–Warshall inner loop into O(n² · ⌈n/64⌉) word operations. The
//! operations provided are exactly the ones the memory-model definitions
//! need: union, composition-free transitive closure, acyclicity and
//! topological iteration.

use std::fmt;

/// A binary relation over the index set `0..len`.
///
/// # Example
///
/// ```
/// use gam_core::Relation;
/// let mut r = Relation::new(3);
/// r.insert(0, 1);
/// r.insert(1, 2);
/// let closed = r.transitive_closure();
/// assert!(closed.contains(0, 2));
/// assert!(closed.is_acyclic());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    len: usize,
    /// Words per row: `ceil(len / 64)`.
    row_words: usize,
    /// Row-major packed adjacency bits: row `i` occupies
    /// `words[i * row_words .. (i + 1) * row_words]`, bit `j % 64` of word
    /// `j / 64` encodes the pair `(i, j)`.
    words: Vec<u64>,
}

impl Relation {
    /// Creates the empty relation over `0..len`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        let row_words = len.div_ceil(64);
        Relation { len, row_words, words: vec![0; len * row_words] }
    }

    /// Number of elements of the underlying index set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if the index set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every pair, keeping the index set (and the allocation).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Adds the pair `(from, to)` to the relation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn insert(&mut self, from: usize, to: usize) {
        assert!(from < self.len && to < self.len, "relation index out of range");
        self.words[from * self.row_words + to / 64] |= 1u64 << (to % 64);
    }

    /// Removes the pair `(from, to)` from the relation.
    pub fn remove(&mut self, from: usize, to: usize) {
        assert!(from < self.len && to < self.len, "relation index out of range");
        self.words[from * self.row_words + to / 64] &= !(1u64 << (to % 64));
    }

    /// Returns true if the pair `(from, to)` is in the relation.
    #[must_use]
    pub fn contains(&self, from: usize, to: usize) -> bool {
        from < self.len
            && to < self.len
            && self.words[from * self.row_words + to / 64] & (1u64 << (to % 64)) != 0
    }

    /// Number of pairs in the relation.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over all pairs in the relation.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.len).flat_map(move |i| self.successors(i).map(move |j| (i, j)))
    }

    /// Iterates over the successors of `from` (the set `{to | (from, to)}`),
    /// in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn successors(&self, from: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(from < self.len, "relation index out of range");
        let row = &self.words[from * self.row_words..(from + 1) * self.row_words];
        row.iter()
            .enumerate()
            .flat_map(|(word_index, &word)| BitIter { word }.map(move |bit| word_index * 64 + bit))
    }

    /// Returns the union of two relations over the same index set.
    ///
    /// # Panics
    ///
    /// Panics if the index sets differ in size.
    #[must_use]
    pub fn union(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// In-place union with another relation over the same index set.
    pub fn union_with(&mut self, other: &Relation) {
        assert_eq!(self.len, other.len, "relation size mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Returns the transitive closure of the relation (word-parallel
    /// Floyd–Warshall: for each pivot `k`, every row that reaches `k` ORs in
    /// row `k` whole words at a time).
    #[must_use]
    pub fn transitive_closure(&self) -> Relation {
        let mut closed = self.clone();
        closed.close_in_place();
        closed
    }

    fn close_in_place(&mut self) {
        let n = self.len;
        let w = self.row_words;
        for k in 0..n {
            let (k_word, k_bit) = (k / 64, 1u64 << (k % 64));
            for i in 0..n {
                if i == k || self.words[i * w + k_word] & k_bit == 0 {
                    continue;
                }
                // row[i] |= row[k], split borrows around the smaller index.
                let (lo, hi) = self.words.split_at_mut(i.max(k) * w);
                let (dst, src) = if i < k {
                    (&mut lo[i * w..i * w + w], &hi[..w])
                } else {
                    (&mut hi[..w], &lo[k * w..k * w + w])
                };
                for (d, s) in dst.iter_mut().zip(src) {
                    *d |= *s;
                }
            }
        }
    }

    /// Returns true if the relation contains no cycle (and no self-loop).
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        let closed = self.transitive_closure();
        (0..self.len).all(|i| !closed.contains(i, i))
    }

    /// Returns a topological ordering of the index set consistent with the
    /// relation, or `None` if the relation is cyclic.
    #[must_use]
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.len;
        let mut indegree = vec![0usize; n];
        for (_, to) in self.iter_pairs() {
            indegree[to] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(node) = ready.pop() {
            order.push(node);
            for next in self.successors(node) {
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    ready.push(next);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Restricts the relation to the pairs where both ends satisfy `keep`,
    /// returning a relation over the same index set.
    #[must_use]
    pub fn restrict(&self, keep: impl Fn(usize) -> bool) -> Relation {
        let mut out = Relation::new(self.len);
        for (from, to) in self.iter_pairs() {
            if keep(from) && keep(to) {
                out.insert(from, to);
            }
        }
        out
    }
}

/// Iterates over the set bit positions of one word, lowest first.
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(bit)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation({} elems, {{", self.len)?;
        let mut first = true;
        for (i, j) in self.iter_pairs() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{i}->{j}")?;
            first = false;
        }
        write!(f, "}})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::len_zero)]
    fn insert_contains_remove() {
        let mut r = Relation::new(4);
        assert!(!r.contains(1, 2));
        r.insert(1, 2);
        assert!(r.contains(1, 2));
        assert_eq!(r.edge_count(), 1);
        r.remove(1, 2);
        assert!(!r.contains(1, 2));
        assert_eq!(r.edge_count(), 0);
        // is_empty refers to the index set, not the edge set, and must stay
        // consistent with len().
        assert!(!r.is_empty());
        assert_eq!(r.is_empty(), r.len() == 0);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let r = Relation::new(2);
        assert!(!r.contains(5, 0));
        assert!(!r.contains(0, 5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut r = Relation::new(2);
        r.insert(2, 0);
    }

    #[test]
    fn transitive_closure_chains() {
        let mut r = Relation::new(4);
        r.insert(0, 1);
        r.insert(1, 2);
        r.insert(2, 3);
        let c = r.transitive_closure();
        assert!(c.contains(0, 3));
        assert!(c.contains(1, 3));
        assert!(!c.contains(3, 0));
        // closure of an acyclic relation stays acyclic
        assert!(c.is_acyclic());
    }

    #[test]
    fn cycle_detection() {
        let mut r = Relation::new(3);
        r.insert(0, 1);
        r.insert(1, 2);
        assert!(r.is_acyclic());
        r.insert(2, 0);
        assert!(!r.is_acyclic());
        assert!(r.topological_order().is_none());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut r = Relation::new(2);
        r.insert(1, 1);
        assert!(!r.is_acyclic());
    }

    #[test]
    fn union_merges_edges() {
        let mut a = Relation::new(3);
        a.insert(0, 1);
        let mut b = Relation::new(3);
        b.insert(1, 2);
        let u = a.union(&b);
        assert!(u.contains(0, 1) && u.contains(1, 2));
        let mut c = a.clone();
        c.union_with(&b);
        assert_eq!(c, u);
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut r = Relation::new(5);
        r.insert(0, 2);
        r.insert(1, 2);
        r.insert(2, 3);
        r.insert(3, 4);
        let order = r.topological_order().expect("acyclic");
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        for (i, j) in r.iter_pairs() {
            assert!(pos(i) < pos(j), "{i} must precede {j}");
        }
    }

    #[test]
    fn restrict_keeps_only_selected_nodes() {
        let mut r = Relation::new(4);
        r.insert(0, 1);
        r.insert(1, 2);
        r.insert(2, 3);
        let restricted = r.restrict(|i| i != 1);
        assert!(!restricted.contains(0, 1));
        assert!(!restricted.contains(1, 2));
        assert!(restricted.contains(2, 3));
    }

    #[test]
    fn iter_pairs_matches_contains() {
        let mut r = Relation::new(3);
        r.insert(2, 0);
        r.insert(0, 1);
        let pairs: Vec<_> = r.iter_pairs().collect();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(2, 0)));
        assert!(pairs.contains(&(0, 1)));
    }

    #[test]
    fn successors_are_sorted_and_complete() {
        let mut r = Relation::new(70);
        r.insert(3, 69);
        r.insert(3, 0);
        r.insert(3, 64);
        assert_eq!(r.successors(3).collect::<Vec<_>>(), vec![0, 64, 69]);
        assert_eq!(r.successors(0).count(), 0);
    }

    #[test]
    fn clear_empties_the_edge_set() {
        let mut r = Relation::new(3);
        r.insert(0, 1);
        r.insert(2, 2);
        r.clear();
        assert_eq!(r.edge_count(), 0);
        assert_eq!(r.len(), 3);
        assert!(r.is_acyclic());
    }

    #[test]
    fn wide_relations_span_word_boundaries() {
        // 130 elements = 3 words per row; exercise bits in every word.
        let n = 130;
        let mut r = Relation::new(n);
        for i in 0..n - 1 {
            r.insert(i, i + 1);
        }
        let c = r.transitive_closure();
        assert!(c.contains(0, n - 1));
        assert!(c.contains(63, 64));
        assert!(c.contains(64, 129));
        assert!(!c.contains(n - 1, 0));
        assert!(c.is_acyclic());
        assert_eq!(c.edge_count(), n * (n - 1) / 2);
        r.insert(n - 1, 0);
        assert!(!r.is_acyclic());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn closure_matches_naive_floyd_warshall() {
        // Pseudo-random graph, compared against a bit-at-a-time reference.
        let n = 97;
        let mut r = Relation::new(n);
        let mut state = 0x9E37_79B9u64;
        for _ in 0..300 {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let i = (state >> 33) as usize % n;
            let j = (state >> 13) as usize % n;
            r.insert(i, j);
        }
        let fast = r.transitive_closure();
        let mut naive = vec![vec![false; n]; n];
        for (i, j) in r.iter_pairs() {
            naive[i][j] = true;
        }
        for k in 0..n {
            for i in 0..n {
                if naive[i][k] {
                    for j in 0..n {
                        if naive[k][j] {
                            naive[i][j] = true;
                        }
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert_eq!(fast.contains(i, j), naive[i][j], "({i}, {j})");
            }
        }
    }

    #[test]
    fn debug_output_lists_edges() {
        let mut r = Relation::new(2);
        r.insert(0, 1);
        let text = format!("{r:?}");
        assert!(text.contains("0->1"));
    }
}
