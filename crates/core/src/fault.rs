//! Deterministic fault injection for robustness testing.
//!
//! Production code is instrumented with named *injection points* — the
//! operational explorer (`explore`), the axiomatic enumeration (`axiomatic`),
//! cache persistence (`cache.persist` for the snapshot rename,
//! `cache.journal.append` for write-ahead-journal appends, `cache.compact`
//! for the journal truncation after a compaction snapshot), run checkpoints
//! (`checkpoint.write`), arena spill segments (`spill.write` before a cold
//! segment lands on disk, `spill.read` before a spilled segment is reloaded),
//! the HTTP I/O paths (`http.read`, `http.write`) and
//! the CLI's trace export (`obs.export`, between the tmp write and the
//! rename) each call [`hit`] with a stable point name. With no plan installed a hit
//! is a single relaxed atomic load, so the instrumentation is free in normal
//! operation.
//!
//! A plan arms points with one of three actions:
//!
//! * `panic` — the hit panics, exercising `catch_unwind` isolation;
//! * `delay:MS` — the hit sleeps for `MS` milliseconds, exercising timeouts;
//! * `kill` — [`hit`] returns `true` and the caller simulates a crash at that
//!   point (e.g. the cache persist path dies between its tmp write and the
//!   rename).
//!
//! Plans come from the `GAM_FAULTS` environment variable (read once, on the
//! first hit) or programmatically via [`install`]. The spec is a
//! comma-separated list of `point=action[@every]` entries; `@every` fires the
//! action on every N-th hit of that point (counted from 1) instead of every
//! hit, so a faulted service still answers the other N-1 requests. Counting
//! is per-point and process-wide, which keeps a plan's firing schedule
//! deterministic regardless of thread interleaving.
//!
//! ```text
//! GAM_FAULTS="explore=panic@3,cache.persist=kill,http.write=delay:50@2"
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once, RwLock};
use std::time::Duration;

/// What an armed injection point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic with a recognizable payload.
    Panic,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
    /// Report `true` from [`hit`]; the caller simulates dying right there.
    Kill,
}

#[derive(Debug)]
struct Point {
    action: Action,
    /// Fire on every `every`-th hit (1 = every hit).
    every: u64,
    hits: AtomicU64,
}

#[derive(Debug, Default)]
struct Plan {
    points: HashMap<String, Point>,
}

static INIT: Once = Once::new();
static ENABLED: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<Plan>> = RwLock::new(None);
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn parse_plan(spec: &str) -> Result<Plan, String> {
    let mut plan = Plan::default();
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let (point, rest) =
            entry.split_once('=').ok_or_else(|| format!("fault entry `{entry}` is missing `=`"))?;
        let (action_spec, every) = match rest.split_once('@') {
            Some((action, count)) => {
                let every: u64 = count
                    .parse()
                    .map_err(|_| format!("fault entry `{entry}` has a bad @every count"))?;
                if every == 0 {
                    return Err(format!("fault entry `{entry}` needs @every >= 1"));
                }
                (action, every)
            }
            None => (rest, 1),
        };
        let action = if action_spec == "panic" {
            Action::Panic
        } else if action_spec == "kill" {
            Action::Kill
        } else if let Some(ms) = action_spec.strip_prefix("delay:") {
            let ms: u64 =
                ms.parse().map_err(|_| format!("fault entry `{entry}` has a bad delay"))?;
            Action::Delay(Duration::from_millis(ms))
        } else {
            return Err(format!(
                "fault entry `{entry}` has unknown action `{action_spec}` \
                 (expected panic, delay:MS or kill)"
            ));
        };
        plan.points
            .insert(point.trim().to_string(), Point { action, every, hits: AtomicU64::new(0) });
    }
    Ok(plan)
}

fn ensure_env_loaded() {
    INIT.call_once(|| {
        if let Ok(spec) = std::env::var("GAM_FAULTS") {
            if let Err(err) = install(&spec) {
                panic!("invalid GAM_FAULTS: {err}");
            }
        }
    });
}

/// Installs a fault plan, replacing any previous one (including one loaded
/// from `GAM_FAULTS`). Point hit counters restart from zero.
pub fn install(spec: &str) -> Result<(), String> {
    let plan = parse_plan(spec)?;
    let enabled = !plan.points.is_empty();
    *PLAN.write().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(plan);
    ENABLED.store(enabled, Ordering::Release);
    Ok(())
}

/// Removes the installed plan; every point disarms.
pub fn reset() {
    ENABLED.store(false, Ordering::Release);
    *PLAN.write().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// Serializes tests that install fault plans: the plan is process-global, so
/// concurrent tests in one binary must take this guard around
/// [`install`]`..`[`reset`]. Survives a poisoning panic (injected panics are
/// the point of the exercise).
#[must_use = "dropping the guard immediately serializes nothing"]
pub fn exclusive() -> MutexGuard<'static, ()> {
    ensure_env_loaded();
    EXCLUSIVE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Reports a named injection point. Free when no plan is armed. When the
/// point is armed and due, a `panic` action panics, a `delay` action sleeps,
/// and a `kill` action returns `true` so the caller can simulate a crash.
pub fn hit(point: &str) -> bool {
    ensure_env_loaded();
    if !ENABLED.load(Ordering::Acquire) {
        return false;
    }
    let action = {
        let plan = PLAN.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(plan) = plan.as_ref() else { return false };
        let Some(armed) = plan.points.get(point) else { return false };
        let count = armed.hits.fetch_add(1, Ordering::AcqRel) + 1;
        if count % armed.every != 0 {
            return false;
        }
        armed.action
    };
    match action {
        Action::Panic => panic!("injected fault: {point}"),
        Action::Delay(pause) => {
            std::thread::sleep(pause);
            false
        }
        Action::Kill => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_hits_are_inert() {
        let _guard = exclusive();
        reset();
        assert!(!hit("explore"));
        assert!(!hit("anything.else"));
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        assert!(parse_plan("no-equals").is_err());
        assert!(parse_plan("p=frobnicate").is_err());
        assert!(parse_plan("p=panic@0").is_err());
        assert!(parse_plan("p=delay:abc").is_err());
        assert!(parse_plan("p=panic@x").is_err());
    }

    #[test]
    fn kill_fires_on_the_configured_cadence() {
        let _guard = exclusive();
        install("persist=kill@3").unwrap();
        let fired: Vec<bool> = (0..6).map(|_| hit("persist")).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true]);
        // Unrelated points stay silent under the same plan.
        assert!(!hit("other"));
        reset();
    }

    #[test]
    fn panic_action_panics_with_the_point_name() {
        let _guard = exclusive();
        install("boom=panic").unwrap();
        let result = std::panic::catch_unwind(|| hit("boom"));
        reset();
        let payload = result.expect_err("armed panic point must panic");
        let text = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("injected fault: boom"), "payload was {text:?}");
    }

    #[test]
    fn delay_action_sleeps_then_continues() {
        let _guard = exclusive();
        install("slow=delay:20").unwrap();
        let start = std::time::Instant::now();
        assert!(!hit("slow"));
        assert!(start.elapsed() >= Duration::from_millis(20));
        reset();
    }

    #[test]
    fn install_replaces_the_previous_plan_and_counters() {
        let _guard = exclusive();
        install("p=kill@2").unwrap();
        assert!(!hit("p"));
        // Reinstalling restarts the count: the next hit is #1 again.
        install("p=kill@2").unwrap();
        assert!(!hit("p"));
        assert!(hit("p"));
        reset();
    }
}
