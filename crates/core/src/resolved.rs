//! Resolved instructions: instruction instances with concrete addresses and
//! read-from sources.
//!
//! Preserved program order (Definition 6 of the paper) is not a purely
//! syntactic notion: three of its cases ask whether two memory instructions
//! access the *same address*, and the ARM variant `SALdLdARM` asks whether two
//! loads read from the *same store*. Both are properties of a particular
//! execution. A [`ResolvedInstr`] therefore records, next to the syntactic
//! register sets, the concrete address of a memory access and the read-from
//! source of a load.

use gam_isa::{FenceKind, Instruction, MemAccessType, Reg};

/// Identifies the store a load reads from, at the granularity needed by the
/// ARM same-address rule: two loads "read from the same store" iff their
/// [`RfSource`]s are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RfSource {
    /// The load reads the initial value of the given address.
    Init(u64),
    /// The load reads from the store with the given global identifier
    /// (assigned by the execution builder; equal identifiers mean the same
    /// dynamic store instance).
    Store(u32),
}

/// The execution-dependent part of a resolved instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedKind {
    /// A load from a concrete address, together with its read-from source if
    /// already known (the axiomatic enumerator always knows it; callers that
    /// do not may use `rf: None`).
    Load {
        /// Concrete address of the access.
        addr: u64,
        /// Which store the load reads from, when known.
        rf: Option<RfSource>,
    },
    /// A store to a concrete address.
    Store {
        /// Concrete address of the access.
        addr: u64,
    },
    /// A fence of the given kind.
    Fence(FenceKind),
    /// A conditional branch.
    Branch,
    /// A register-to-register computation.
    Alu,
}

/// An instruction instance whose execution-dependent attributes are resolved.
///
/// The syntactic register sets (`RS`, `WS`, `ARS` and the store-data read set)
/// are copied out of the [`Instruction`] so that downstream crates can build
/// resolved instructions without holding on to the original program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedInstr {
    kind: ResolvedKind,
    read_set: Vec<Reg>,
    write_set: Vec<Reg>,
    addr_read_set: Vec<Reg>,
    data_read_set: Vec<Reg>,
}

impl ResolvedInstr {
    /// Resolves a static instruction given its concrete address (for memory
    /// instructions) and read-from source (for loads).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is `None` for a memory instruction.
    #[must_use]
    pub fn from_instruction(instr: &Instruction, addr: Option<u64>, rf: Option<RfSource>) -> Self {
        let kind = match instr {
            Instruction::Load { .. } => {
                ResolvedKind::Load { addr: addr.expect("load must have a resolved address"), rf }
            }
            Instruction::Store { .. } => {
                ResolvedKind::Store { addr: addr.expect("store must have a resolved address") }
            }
            Instruction::Fence { kind } => ResolvedKind::Fence(*kind),
            Instruction::Branch { .. } => ResolvedKind::Branch,
            Instruction::Alu { .. } => ResolvedKind::Alu,
        };
        ResolvedInstr {
            kind,
            read_set: instr.read_set(),
            write_set: instr.write_set(),
            addr_read_set: instr.addr_read_set(),
            data_read_set: instr.data_read_set(),
        }
    }

    /// Builds a resolved instruction directly from its parts (useful in tests
    /// and for synthetic executions).
    #[must_use]
    pub fn from_parts(
        kind: ResolvedKind,
        read_set: Vec<Reg>,
        write_set: Vec<Reg>,
        addr_read_set: Vec<Reg>,
        data_read_set: Vec<Reg>,
    ) -> Self {
        ResolvedInstr { kind, read_set, write_set, addr_read_set, data_read_set }
    }

    /// The execution-dependent kind.
    #[must_use]
    pub fn kind(&self) -> ResolvedKind {
        self.kind
    }

    /// `RS(I)`: registers read by the instruction.
    #[must_use]
    pub fn read_set(&self) -> &[Reg] {
        &self.read_set
    }

    /// `WS(I)`: registers written by the instruction.
    #[must_use]
    pub fn write_set(&self) -> &[Reg] {
        &self.write_set
    }

    /// `ARS(I)`: registers read to compute the memory address.
    #[must_use]
    pub fn addr_read_set(&self) -> &[Reg] {
        &self.addr_read_set
    }

    /// Registers read to compute the data of a store.
    #[must_use]
    pub fn data_read_set(&self) -> &[Reg] {
        &self.data_read_set
    }

    /// Returns true for loads.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self.kind, ResolvedKind::Load { .. })
    }

    /// Returns true for stores.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self.kind, ResolvedKind::Store { .. })
    }

    /// Returns true for loads and stores.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Returns true for fences.
    #[must_use]
    pub fn is_fence(&self) -> bool {
        matches!(self.kind, ResolvedKind::Fence(_))
    }

    /// Returns true for branches.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(self.kind, ResolvedKind::Branch)
    }

    /// The fence kind, for fences.
    #[must_use]
    pub fn fence_kind(&self) -> Option<FenceKind> {
        match self.kind {
            ResolvedKind::Fence(kind) => Some(kind),
            _ => None,
        }
    }

    /// The memory access type, for loads and stores.
    #[must_use]
    pub fn mem_access_type(&self) -> Option<MemAccessType> {
        match self.kind {
            ResolvedKind::Load { .. } => Some(MemAccessType::Load),
            ResolvedKind::Store { .. } => Some(MemAccessType::Store),
            _ => None,
        }
    }

    /// The concrete address, for loads and stores.
    #[must_use]
    pub fn address(&self) -> Option<u64> {
        match self.kind {
            ResolvedKind::Load { addr, .. } | ResolvedKind::Store { addr } => Some(addr),
            _ => None,
        }
    }

    /// The read-from source, for loads that know it.
    #[must_use]
    pub fn rf_source(&self) -> Option<RfSource> {
        match self.kind {
            ResolvedKind::Load { rf, .. } => rf,
            _ => None,
        }
    }

    /// Returns true if `self` and `other` are memory instructions for the same address.
    #[must_use]
    pub fn same_address(&self, other: &ResolvedInstr) -> bool {
        match (self.address(), other.address()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam_isa::{Addr, AluOp, Loc, Operand};

    fn r(i: u32) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn resolve_load() {
        let instr = Instruction::Load { dst: r(1), addr: Addr::reg(r(2)) };
        let resolved = ResolvedInstr::from_instruction(&instr, Some(64), Some(RfSource::Init(64)));
        assert!(resolved.is_load() && resolved.is_memory());
        assert_eq!(resolved.address(), Some(64));
        assert_eq!(resolved.rf_source(), Some(RfSource::Init(64)));
        assert_eq!(resolved.read_set(), &[r(2)]);
        assert_eq!(resolved.write_set(), &[r(1)]);
        assert_eq!(resolved.addr_read_set(), &[r(2)]);
        assert_eq!(resolved.mem_access_type(), Some(MemAccessType::Load));
    }

    #[test]
    fn resolve_store() {
        let instr = Instruction::Store { addr: Addr::loc(Loc::new("a")), data: Operand::reg(r(3)) };
        let resolved = ResolvedInstr::from_instruction(&instr, Some(Loc::new("a").address()), None);
        assert!(resolved.is_store());
        assert_eq!(resolved.data_read_set(), &[r(3)]);
        assert_eq!(resolved.rf_source(), None);
        assert_eq!(resolved.mem_access_type(), Some(MemAccessType::Store));
    }

    #[test]
    fn resolve_fence_branch_alu() {
        let fence = Instruction::Fence { kind: FenceKind::LS };
        let resolved = ResolvedInstr::from_instruction(&fence, None, None);
        assert!(resolved.is_fence());
        assert_eq!(resolved.fence_kind(), Some(FenceKind::LS));
        assert_eq!(resolved.address(), None);

        let alu = Instruction::Alu {
            dst: r(1),
            op: AluOp::Add,
            lhs: Operand::reg(r(2)),
            rhs: Operand::imm(1),
        };
        let resolved = ResolvedInstr::from_instruction(&alu, None, None);
        assert!(!resolved.is_memory() && !resolved.is_fence() && !resolved.is_branch());
    }

    #[test]
    #[should_panic(expected = "resolved address")]
    fn memory_instruction_requires_address() {
        let instr = Instruction::Load { dst: r(1), addr: Addr::reg(r(2)) };
        let _ = ResolvedInstr::from_instruction(&instr, None, None);
    }

    #[test]
    fn same_address_predicate() {
        let a = ResolvedInstr::from_parts(
            ResolvedKind::Store { addr: 8 },
            vec![],
            vec![],
            vec![],
            vec![],
        );
        let b = ResolvedInstr::from_parts(
            ResolvedKind::Load { addr: 8, rf: None },
            vec![],
            vec![r(1)],
            vec![],
            vec![],
        );
        let c = ResolvedInstr::from_parts(
            ResolvedKind::Load { addr: 16, rf: None },
            vec![],
            vec![],
            vec![],
            vec![],
        );
        assert!(a.same_address(&b));
        assert!(!a.same_address(&c));
        let alu = ResolvedInstr::from_parts(ResolvedKind::Alu, vec![], vec![], vec![], vec![]);
        assert!(!a.same_address(&alu));
    }

    #[test]
    fn rf_source_equality_distinguishes_init_and_stores() {
        assert_eq!(RfSource::Init(4), RfSource::Init(4));
        assert_ne!(RfSource::Init(4), RfSource::Init(8));
        assert_ne!(RfSource::Init(4), RfSource::Store(0));
        assert_eq!(RfSource::Store(3), RfSource::Store(3));
        assert_ne!(RfSource::Store(3), RfSource::Store(4));
    }
}
