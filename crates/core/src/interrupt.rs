//! Cooperative interruption of long-running searches.
//!
//! Model-checking workloads are open-ended: state spaces routinely exceed any
//! fixed budget, so every search loop in the workspace (the operational
//! explorer's expansion loops, the axiomatic rf/mo enumeration) periodically
//! polls an [`Interrupt`] — a shared [`CancelToken`] plus an optional
//! wall-clock deadline. When the poll trips, the search stops where it is and
//! reports *why* via a [`StopReason`], carrying whatever partial results it
//! has accumulated so far instead of discarding them.
//!
//! Polling is cooperative and cheap: a relaxed atomic load plus (only when a
//! deadline is set) an `Instant::now()` call, performed every few hundred
//! steps rather than on every step.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag.
///
/// Cloning the token shares the underlying flag: cancelling any clone cancels
/// them all. Tokens are cheap to clone and safe to poll from many threads.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a search stopped before exhausting its state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StopReason {
    /// The shared [`CancelToken`] was cancelled.
    Cancelled,
    /// The wall-clock budget ran out.
    WallBudget {
        /// The budget that was exceeded.
        budget: Duration,
    },
    /// The explored-state budget ran out.
    StateBudget {
        /// The state-count limit that was reached.
        limit: usize,
    },
    /// The memory budget ran out and every degradation step (sleep-cache
    /// flush, spill-to-disk) was already taken or unavailable.
    MemoryBudget {
        /// The byte budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::WallBudget { budget } => {
                write!(f, "wall budget of {} ms exceeded", budget.as_millis())
            }
            StopReason::StateBudget { limit } => {
                write!(f, "state budget of {limit} states exceeded")
            }
            StopReason::MemoryBudget { budget } => {
                write!(f, "memory budget of {budget} bytes exceeded")
            }
        }
    }
}

/// A pollable interruption source: a cancel token and/or a deadline.
///
/// The default value never triggers, so un-budgeted callers pay only a
/// `None` check per poll.
#[derive(Debug, Clone, Default)]
pub struct Interrupt {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    /// The wall budget the deadline was derived from, reported in
    /// [`StopReason::WallBudget`].
    wall_budget: Option<Duration>,
}

impl Interrupt {
    /// An interrupt that never triggers.
    #[must_use]
    pub fn none() -> Self {
        Interrupt::default()
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a wall-clock budget, measured from now.
    #[must_use]
    pub fn with_wall_budget(mut self, budget: Duration) -> Self {
        self.wall_budget = Some(budget);
        self.deadline = Instant::now().checked_add(budget);
        self
    }

    /// Whether this interrupt can ever trigger.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.cancel.is_some() || self.deadline.is_some()
    }

    /// Polls the interrupt: `Some(reason)` once cancellation was requested or
    /// the deadline passed, `None` otherwise. Cancellation wins ties so a
    /// cancelled check reports [`StopReason::Cancelled`] even if its deadline
    /// also expired.
    #[must_use]
    pub fn triggered(&self) -> Option<StopReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                let budget = self.wall_budget.unwrap_or_default();
                return Some(StopReason::WallBudget { budget });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_interrupt_never_triggers() {
        let interrupt = Interrupt::none();
        assert!(!interrupt.is_armed());
        assert_eq!(interrupt.triggered(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        let interrupt = Interrupt::none().with_cancel(clone);
        assert_eq!(interrupt.triggered(), Some(StopReason::Cancelled));
    }

    #[test]
    fn expired_deadline_reports_the_budget() {
        let interrupt = Interrupt::none().with_wall_budget(Duration::ZERO);
        match interrupt.triggered() {
            Some(StopReason::WallBudget { budget }) => assert_eq!(budget, Duration::ZERO),
            other => panic!("expected wall-budget trigger, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_wins_over_expired_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let interrupt = Interrupt::none().with_cancel(token).with_wall_budget(Duration::ZERO);
        assert_eq!(interrupt.triggered(), Some(StopReason::Cancelled));
    }

    #[test]
    fn generous_deadline_does_not_trigger() {
        let interrupt = Interrupt::none().with_wall_budget(Duration::from_secs(3600));
        assert!(interrupt.is_armed());
        assert_eq!(interrupt.triggered(), None);
    }

    #[test]
    fn stop_reason_display_is_stable() {
        assert_eq!(StopReason::Cancelled.to_string(), "cancelled");
        assert_eq!(
            StopReason::WallBudget { budget: Duration::from_millis(250) }.to_string(),
            "wall budget of 250 ms exceeded"
        );
        assert_eq!(
            StopReason::StateBudget { limit: 42 }.to_string(),
            "state budget of 42 states exceeded"
        );
        assert_eq!(
            StopReason::MemoryBudget { budget: 1024 }.to_string(),
            "memory budget of 1024 bytes exceeded"
        );
    }
}
