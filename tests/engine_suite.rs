//! Integration tests of the parallel suite runner: a parallel
//! (`parallelism >= 4`) full-library run must produce verdicts and outcome
//! sets identical to the sequential run, per-test failures must be captured
//! rather than aborting the suite, and the JSON export must carry the fields
//! the perf-trajectory tooling consumes.

use gam::core::ModelKind;
use gam::engine::{Backend, CheckerConfig, Engine, Verdict};
use gam::isa::litmus::library;

fn suite(model: ModelKind, backend: Backend, parallelism: usize) -> gam::engine::SuiteReport {
    Engine::builder()
        .model(model)
        .backend(backend)
        .parallelism(parallelism)
        .build()
        .expect("supported (model, backend) pair")
        .run_suite(&library::all_tests())
}

#[test]
fn parallel_run_is_identical_to_sequential_for_every_backend() {
    for backend in Backend::ALL {
        let sequential = suite(ModelKind::Gam, backend, 1);
        let parallel = suite(ModelKind::Gam, backend, 4);
        assert_eq!(sequential.parallelism, 1);
        assert_eq!(parallel.parallelism, 4.min(sequential.reports.len()));
        assert!(sequential.all_ok(), "{backend}: sequential run failed");
        assert!(
            sequential.agrees_with(&parallel) && parallel.agrees_with(&sequential),
            "{backend}: parallel and sequential suite runs disagree"
        );
        // Order and verdicts, element by element, not just set equality.
        let seq: Vec<_> = sequential.verdicts().collect();
        let par: Vec<_> = parallel.verdicts().collect();
        assert_eq!(seq, par, "{backend}: verdict sequences differ");
    }
}

#[test]
fn parallel_runs_agree_across_all_supported_models() {
    for kind in [ModelKind::Sc, ModelKind::Tso, ModelKind::Gam0, ModelKind::GamArm] {
        let sequential = suite(kind, Backend::Axiomatic, 1);
        let parallel = suite(kind, Backend::Axiomatic, 8);
        assert!(sequential.agrees_with(&parallel), "{kind}: parallel axiomatic run differs");
    }
}

#[test]
fn known_verdicts_survive_the_facade() {
    let report = suite(ModelKind::Gam, Backend::Axiomatic, 4);
    assert_eq!(report.report_for("dekker").unwrap().verdict, Some(Verdict::Allowed));
    assert_eq!(report.report_for("corr").unwrap().verdict, Some(Verdict::Forbidden));
    assert_eq!(report.report_for("oota").unwrap().verdict, Some(Verdict::Forbidden));
}

#[test]
fn per_test_errors_are_captured_not_fatal() {
    let engine = Engine::builder()
        .model(ModelKind::Gam)
        .axiomatic_config(CheckerConfig { max_events: 3 })
        .parallelism(4)
        .build()
        .unwrap();
    let report = engine.run_suite(&library::all_tests());
    assert!(!report.all_ok(), "a 3-event limit must fail some library tests");
    let failed = report.reports.iter().filter(|r| !r.is_ok()).count();
    let passed = report.reports.iter().filter(|r| r.is_ok()).count();
    assert!(failed > 0 && passed > 0, "both small and large tests exist in the library");
    for test_report in &report.reports {
        assert_eq!(test_report.is_ok(), test_report.verdict.is_some());
    }
}

#[test]
fn json_export_carries_the_machine_readable_fields() {
    let report = suite(ModelKind::Gam, Backend::Operational, 4);
    let json = report.to_json_string();
    assert!(json.contains("\"backend\":\"operational\""));
    assert!(json.contains("\"model\":\"GAM\""));
    assert!(json.contains("\"parallelism\":4"));
    assert!(json.contains("\"tests\":["));
    assert!(json.contains("\"test\":\"dekker\""));
    assert!(json.contains("\"verdict\":\"allowed\""));
    assert!(json.contains("\"wall_us\":"));
    // Every library test appears exactly once.
    for test in library::all_tests() {
        assert_eq!(
            json.matches(&format!("\"test\":\"{}\"", test.name())).count(),
            1,
            "{} must appear exactly once",
            test.name()
        );
    }
}
