//! Cross-backend agreement property test — the machine-checked counterpart
//! of the paper's Theorem 1 at library scale, driven through the unified
//! `dyn Checker` trait.
//!
//! Every litmus test in the library is checked under every model that both
//! backends support ({SC, TSO, GAM, GAM0}), through trait objects so that
//! the two backends are literally indistinguishable to the test driver, and
//! the *complete* allowed-outcome sets must be identical. Witnesses and
//! verdicts are cross-checked as well, and the one capability gap (GAM-ARM
//! has no abstract machine) must be reported uniformly by `supports`.

use std::sync::atomic::{AtomicUsize, Ordering};

use gam::axiomatic::AxiomaticChecker;
use gam::core::{model, ModelKind};
use gam::engine::{Backend, Checker, Engine, EngineError};
use gam::isa::litmus::library;
use gam::operational::OperationalChecker;

/// Both backends for one model, erased to the unified trait.
fn checkers_for(kind: ModelKind) -> [Box<dyn Checker>; 2] {
    [Box::new(AxiomaticChecker::new(model::by_kind(kind))), Box::new(OperationalChecker::new(kind))]
}

/// Drives every library test through both backends via `dyn Checker` (work
/// is fanned out over a few threads to keep the full-library sweep fast) and
/// asserts identical allowed-outcome sets, verdicts and witness consistency.
fn assert_backends_agree(kind: ModelKind) {
    let tests = library::all_tests();
    let [axiomatic, operational] = checkers_for(kind);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= tests.len() {
                    break;
                }
                let test = &tests[index];
                let name = test.name();
                let ax = axiomatic
                    .allowed_outcomes(test)
                    .unwrap_or_else(|e| panic!("{kind}/{name}: axiomatic failed: {e}"));
                let op = operational
                    .allowed_outcomes(test)
                    .unwrap_or_else(|e| panic!("{kind}/{name}: operational failed: {e}"));
                assert_eq!(
                    ax, op,
                    "{kind}/{name}: allowed-outcome sets differ between the backends"
                );

                let ax_verdict = axiomatic.check(test).expect("axiomatic verdict");
                let op_verdict = operational.check(test).expect("operational verdict");
                assert_eq!(ax_verdict, op_verdict, "{kind}/{name}: verdicts differ");

                // A witness exists iff the condition is allowed, on both
                // backends, and is a member of the (shared) outcome set.
                for checker in [&axiomatic, &operational] {
                    let witness = checker.find_witness(test).expect("witness query");
                    assert_eq!(
                        witness.is_some(),
                        ax_verdict.is_allowed(),
                        "{kind}/{name}: witness presence disagrees with the verdict"
                    );
                    if let Some(outcome) = witness {
                        assert!(test.condition().matched_by(&outcome));
                        assert!(ax.contains(&outcome));
                    }
                }
            });
        }
    });
}

#[test]
fn sc_backends_agree_on_the_whole_library() {
    assert_backends_agree(ModelKind::Sc);
}

#[test]
fn tso_backends_agree_on_the_whole_library() {
    assert_backends_agree(ModelKind::Tso);
}

#[test]
fn gam_backends_agree_on_the_whole_library() {
    assert_backends_agree(ModelKind::Gam);
}

#[test]
fn gam0_backends_agree_on_the_whole_library() {
    assert_backends_agree(ModelKind::Gam0);
}

#[test]
fn capability_gaps_are_uniform_across_the_trait() {
    for kind in [ModelKind::Sc, ModelKind::Tso, ModelKind::Gam, ModelKind::Gam0] {
        for checker in checkers_for(kind) {
            assert!(checker.supports(kind), "{}/{kind}", checker.name());
            assert_eq!(
                checker.supports(ModelKind::GamArm),
                checker.backend() == Backend::Axiomatic,
                "GAM-ARM is axiomatic-only"
            );
        }
    }
    // The engine surfaces the same gap as a typed build error.
    assert!(matches!(
        Engine::operational(ModelKind::GamArm),
        Err(EngineError::UnsupportedModel {
            backend: Backend::Operational,
            model: ModelKind::GamArm
        })
    ));
    assert!(Engine::axiomatic(ModelKind::GamArm).check(&library::dekker()).is_ok());
}
