//! End-to-end checkpoint/resume through the real binary: a `gam bench` run
//! killed (SIGKILL — no cleanup, no flush) partway through and resumed from
//! its checkpoint must report outcome sets, outcome fingerprints and
//! visited-state counts identical to an uninterrupted run.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use gam_engine::Json;

fn gam() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gam"))
}

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("corpus")
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("gam-checkpoint-cli-{}-{tag}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// The verdict-relevant projection of a `gam-bench/v1` report: everything
/// that must be identical between an interrupted-and-resumed run and an
/// uninterrupted one. Wall times and rates are measurements, not verdicts,
/// and legitimately differ run to run.
fn verdict_fields(report: &Json) -> BTreeMap<(String, String), (u64, u64, String, bool)> {
    let mut fields = BTreeMap::new();
    for section in report.get("per_model").and_then(Json::as_array).expect("per_model") {
        let model = section.get("model").and_then(Json::as_str).expect("model").to_string();
        for row in section.get("tests").and_then(Json::as_array).expect("tests") {
            let test = row.get("test").and_then(Json::as_str).expect("test").to_string();
            fields.insert(
                (model.clone(), test),
                (
                    row.get("states_visited").and_then(Json::as_u64).expect("states_visited"),
                    row.get("outcomes").and_then(Json::as_u64).expect("outcomes"),
                    row.get("outcome_hash")
                        .and_then(Json::as_str)
                        .expect("outcome_hash")
                        .to_string(),
                    matches!(row.get("agree"), Some(Json::Bool(true))),
                ),
            );
        }
    }
    fields
}

fn run_bench(checkpoint: &Path) -> Json {
    let output = gam()
        .args(["bench"])
        .arg(corpus_dir())
        .args(["--json", "--checkpoint"])
        .arg(checkpoint)
        .output()
        .expect("gam bench runs");
    assert!(
        output.status.success(),
        "bench failed: {}\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    Json::parse(&String::from_utf8_lossy(&output.stdout)).expect("bench report parses")
}

#[test]
fn a_sigkilled_bench_resumed_from_its_checkpoint_matches_an_uninterrupted_run() {
    // Ground truth: one uninterrupted checkpointed run.
    let uninterrupted = Scratch::new("uninterrupted");
    let baseline = run_bench(&uninterrupted.0);
    assert!(matches!(baseline.get("ok"), Some(Json::Bool(true))));

    // The victim: same bench, SIGKILLed once its checkpoint shows progress.
    // SIGKILL gives the process no chance to flush or clean up — whatever
    // the checkpoint holds is exactly what completed appends left behind.
    let killed = Scratch::new("killed");
    let mut child = gam()
        .args(["bench"])
        .arg(corpus_dir())
        .args(["--json", "--checkpoint"])
        .arg(&killed.0)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("gam bench spawns");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let progressed = std::fs::metadata(&killed.0).map(|m| m.len() > 1_000).unwrap_or(false);
        let exited = child.try_wait().expect("try_wait").is_some();
        if progressed || exited {
            break;
        }
        assert!(Instant::now() < deadline, "bench never made checkpoint progress");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Racing the kill against completion is fine: if the child already
    // finished, the resume below is a pure replay — still required to
    // match the baseline exactly.
    let _ = child.kill();
    let _ = child.wait();

    // Resume. Completed units replay from the log; whatever the kill
    // interrupted is recomputed — determinism makes the union identical.
    let resumed = run_bench(&killed.0);
    assert!(matches!(resumed.get("ok"), Some(Json::Bool(true))));
    assert_eq!(
        verdict_fields(&baseline),
        verdict_fields(&resumed),
        "resumed run must reproduce outcome sets and state counts exactly"
    );
    let totals = |report: &Json| {
        report
            .get("totals")
            .and_then(|t| t.get("states_visited"))
            .and_then(Json::as_u64)
            .expect("totals")
    };
    assert_eq!(totals(&baseline), totals(&resumed));
}
