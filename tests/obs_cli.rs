//! Observability contracts through the real binary.
//!
//! * Warnings go to **stderr** with the stable `warn:` prefix and never
//!   contaminate stdout — `--json` consumers must keep parsing even when
//!   the run degrades (corrupt checkpoint, truncated WAL).
//! * `--trace-out FILE` writes well-formed Chrome `trace_event` JSON with
//!   the promised span nesting: a `phase.parse` span, an `engine.check`
//!   span, and search-phase spans (`phase.rf_enum`/`phase.mo_search` or
//!   `phase.explore_*`) *inside* the engine check.
//! * The `obs.export` fault point kills the export between the tmp write
//!   and the rename: the trace file is either absent or complete, never
//!   torn.

use std::path::{Path, PathBuf};
use std::process::Command;

use gam_engine::Json;

fn gam() -> Command {
    let mut command = Command::new(env!("CARGO_BIN_EXE_gam"));
    // Inherited fault plans would fire in unrelated assertions.
    command.env_remove("GAM_FAULTS");
    command
}

fn litmus_file() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("corpus").join("dekker.litmus")
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("gam-obs-cli-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn warnings_are_stderr_only_with_stable_prefix_and_stdout_stays_parseable() {
    // A corrupt checkpoint makes `gam check` warn (bad magic, recovered by
    // starting empty) but still run to completion.
    let checkpoint = Scratch::new("corrupt-checkpoint.log");
    std::fs::write(&checkpoint.0, b"this is not a WAL\x00\xff garbage").expect("write checkpoint");
    let output = gam()
        .arg("check")
        .arg(litmus_file())
        .args(["--json", "--checkpoint"])
        .arg(&checkpoint.0)
        .output()
        .expect("gam check runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "check failed: {}\n{stderr}", output.status);
    assert!(
        stderr.lines().any(|line| line.starts_with("warn: ")),
        "expected a `warn: `-prefixed stderr line, got:\n{stderr}"
    );
    assert!(!stdout.contains("warn:"), "warning leaked into stdout:\n{stdout}");
    let report = Json::parse(stdout.trim()).expect("stdout is still one parseable JSON report");
    assert!(report.get("suite").is_some(), "report lost its suite field");
}

/// Every trace event of one export, as `(phase, name, ts, dur)` with
/// microsecond times; `phase` is the Chrome `ph` field.
fn trace_events(trace: &Json) -> Vec<(String, String, u64, u64)> {
    trace
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array")
        .iter()
        .map(|event| {
            (
                event.get("ph").and_then(Json::as_str).expect("ph").to_string(),
                event.get("name").and_then(Json::as_str).expect("name").to_string(),
                event.get("ts").and_then(Json::as_u64).expect("ts"),
                event.get("dur").and_then(Json::as_u64).unwrap_or(0),
            )
        })
        .collect()
}

#[test]
fn trace_out_writes_wellformed_chrome_trace_with_nested_spans() {
    let trace_path = Scratch::new("trace.json");
    let output = gam()
        .arg("check")
        .arg(litmus_file())
        .args(["--json", "--trace-out"])
        .arg(&trace_path.0)
        .output()
        .expect("gam check runs");
    assert!(
        output.status.success(),
        "check failed: {}\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let raw = std::fs::read_to_string(&trace_path.0).expect("trace file written");
    let trace = Json::parse(&raw).expect("trace is well-formed JSON");
    let events = trace_events(&trace);
    assert!(!events.is_empty(), "trace has no events");

    let complete =
        |name: &str| events.iter().filter(|(ph, n, ..)| ph == "X" && n == name).collect::<Vec<_>>();
    assert!(!complete("phase.parse").is_empty(), "no phase.parse span");
    let checks = complete("engine.check");
    assert!(!checks.is_empty(), "no engine.check span");

    // At least one search-phase span must nest (by time) inside an
    // engine.check span: that is the `parse -> engine check -> search`
    // hierarchy the flag promises.
    let search: Vec<_> = events
        .iter()
        .filter(|(ph, n, ..)| {
            ph == "X"
                && (n == "phase.rf_enum"
                    || n == "phase.mo_search"
                    || n == "phase.explore_seq"
                    || n == "phase.explore_sharded")
        })
        .collect();
    assert!(!search.is_empty(), "no search-phase spans (rf_enum/mo_search/explore)");
    let nested = search.iter().any(|(_, _, ts, dur)| {
        checks.iter().any(|(_, _, cts, cdur)| ts >= cts && ts + dur <= cts + cdur)
    });
    assert!(nested, "no search span nests inside an engine.check span");
}

#[test]
fn a_killed_trace_export_leaves_no_file_behind() {
    let trace_path = Scratch::new("killed-trace.json");
    let output = gam()
        .arg("check")
        .arg(litmus_file())
        .args(["--json", "--trace-out"])
        .arg(&trace_path.0)
        .env("GAM_FAULTS", "obs.export=kill")
        .output()
        .expect("gam check runs");
    // The check itself succeeded, but the export died: usage-level error.
    assert_eq!(output.status.code(), Some(2), "expected exit 2 on a killed export");
    assert!(!trace_path.0.exists(), "killed export must not leave a trace file");
    let tmp = trace_path.0.with_extension("trace-tmp");
    assert!(!tmp.exists(), "killed export must clean up its tmp file");
}
