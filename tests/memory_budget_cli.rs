//! End-to-end memory-pressure behaviour through the real binary.
//!
//! The contract under test, rung by rung of the degradation ladder:
//!
//! * a `--mem-budget` too small to finish and with nowhere to spill stops
//!   cleanly — exit 3, an inconclusive row naming the memory budget, never
//!   a panic or a wrong verdict;
//! * the same budget with a `--spill-dir` completes by moving cold arena
//!   segments to disk, and the verdict matches an uncapped run;
//! * injected spill faults (`spill.write`, `spill.read`) degrade the run
//!   back to a sound inconclusive at worst;
//! * a budgeted `gam check --checkpoint` killed (SIGKILL) mid-exploration
//!   resumes from its intra-exploration snapshot and reports the same
//!   verdict as an uninterrupted run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

use gam_engine::Json;

/// A budget inside big-003's spill window: above the non-spillable floor
/// (states x ~32 bytes of table/frontier overhead), below the uncapped
/// peak, so the exploration can only finish by spilling arena rows.
const BIG_003_WINDOW_BUDGET: &str = "1639752";

/// A budget below any big test's floor: trips before the witness search
/// reaches a matching final state, so the verdict must be inconclusive.
const TINY_BUDGET: &str = "50000";

fn gam() -> Command {
    let mut command = Command::new(env!("CARGO_BIN_EXE_gam"));
    command.env_remove("GAM_FAULTS");
    command
}

fn big_test(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("corpus-big").join(name)
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("gam-mem-cli-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        let _ = std::fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
        let _ = std::fs::remove_file(&self.0);
    }
}

/// The single result row of a one-test, one-pair `gam check --json` report.
fn only_row(report: &Json) -> &Json {
    let rows = report.get("results").and_then(Json::as_array).expect("results");
    assert_eq!(rows.len(), 1, "expected exactly one (model, backend) row");
    &rows[0]
}

fn parse_stdout(output: &Output) -> Json {
    Json::parse(&String::from_utf8_lossy(&output.stdout)).expect("check report parses")
}

fn assert_no_panic(output: &Output) {
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(!stderr.contains("panicked"), "the binary must never panic: {stderr}");
    assert!(output.status.code().is_some(), "the binary must exit, not die on a signal");
}

#[test]
fn a_budget_too_small_to_finish_stops_with_a_clean_inconclusive() {
    let output = gam()
        .args(["check"])
        .arg(big_test("big-001.litmus"))
        .args(["--models", "gam", "--backends", "operational", "--mem-budget", TINY_BUDGET])
        .args(["--json"])
        .output()
        .expect("gam check runs");
    assert_no_panic(&output);
    assert_eq!(output.status.code(), Some(3), "inconclusive exits 3");
    let report = parse_stdout(&output);
    let row = only_row(&report);
    assert_eq!(row.get("verdict").and_then(Json::as_str), Some("inconclusive"));
    let reason = row.get("reason").and_then(Json::as_str).expect("reason");
    assert!(
        reason.contains("memory budget") && reason.contains(TINY_BUDGET),
        "the reason must name the exhausted budget: {reason}"
    );
    // A clean stop still reports the partial work it salvaged.
    assert!(row.get("states_visited").and_then(Json::as_u64).unwrap_or(0) > 0);
}

#[test]
fn the_same_budget_with_a_spill_dir_completes_with_the_uncapped_verdict() {
    // "Uncapped" here means a budget far above the peak: same sequential
    // code path and report shape, but the ceiling can never trip.
    let uncapped = gam()
        .args(["check"])
        .arg(big_test("big-003.litmus"))
        .args(["--models", "gam", "--backends", "operational", "--json"])
        .args(["--mem-budget", "1073741824"])
        .output()
        .expect("gam check runs");
    assert!(uncapped.status.success());
    let uncapped_verdict = only_row(&parse_stdout(&uncapped))
        .get("verdict")
        .and_then(Json::as_str)
        .expect("verdict")
        .to_string();

    let spill = Scratch::new("spill");
    let capped = gam()
        .args(["check"])
        .arg(big_test("big-003.litmus"))
        .args(["--models", "gam", "--backends", "operational", "--json"])
        .args(["--mem-budget", BIG_003_WINDOW_BUDGET, "--spill-dir"])
        .arg(&spill.0)
        .output()
        .expect("gam check runs");
    assert_no_panic(&capped);
    assert!(
        capped.status.success(),
        "capped run must complete via spill: {}",
        String::from_utf8_lossy(&capped.stderr)
    );
    let row = parse_stdout(&capped);
    assert_eq!(
        only_row(&row).get("verdict").and_then(Json::as_str),
        Some(uncapped_verdict.as_str()),
        "a capped run that completes must agree with the uncapped verdict"
    );
    // The budget sits below the uncapped peak, so completing means the
    // ladder actually wrote spill segments.
    let segments = std::fs::read_dir(&spill.0)
        .map(|entries| entries.filter_map(Result::ok).count())
        .unwrap_or(0);
    assert!(segments > 0, "the capped run must have spilled at least one segment");
}

/// Injected spill faults must degrade to a sound answer: either the run
/// still completes with the true verdict, or it stops inconclusive naming
/// the memory budget — never a panic, never a wrong verdict.
fn spill_fault_degrades_soundly(fault: &str) {
    let spill = Scratch::new(&format!("fault-{}", fault.replace('.', "-")));
    let output = gam()
        .args(["check"])
        .arg(big_test("big-003.litmus"))
        .args(["--models", "gam", "--backends", "operational", "--json"])
        .args(["--mem-budget", BIG_003_WINDOW_BUDGET, "--spill-dir"])
        .arg(&spill.0)
        .env("GAM_FAULTS", format!("{fault}=kill@2"))
        .output()
        .expect("gam check runs");
    assert_no_panic(&output);
    let report = parse_stdout(&output);
    let row = only_row(&report);
    match output.status.code() {
        Some(0) => {
            // Recovered: the verdict must be the true one (big tests carry
            // SC-reachable conditions, so the truth is "allowed").
            assert_eq!(row.get("verdict").and_then(Json::as_str), Some("allowed"));
        }
        Some(3) => {
            let reason = row.get("reason").and_then(Json::as_str).expect("reason");
            assert!(
                reason.contains("memory budget"),
                "a spill-fault stop must surface as the memory-budget rung: {reason}"
            );
        }
        code => panic!(
            "spill fault must complete or degrade to inconclusive, got exit {code:?}: {}",
            String::from_utf8_lossy(&output.stderr)
        ),
    }
}

#[test]
fn an_injected_spill_write_fault_degrades_soundly() {
    spill_fault_degrades_soundly("spill.write");
}

#[test]
fn an_injected_spill_read_fault_degrades_soundly() {
    spill_fault_degrades_soundly("spill.read");
}

#[test]
fn a_sigkilled_budgeted_check_resumes_mid_exploration_to_the_same_report() {
    // Ground truth: an uninterrupted capped run (spill makes the window
    // budget completable, and slows the run enough to kill it mid-flight).
    let spill_a = Scratch::new("resume-truth-spill");
    let truth = gam()
        .args(["check"])
        .arg(big_test("big-003.litmus"))
        .args(["--models", "gam", "--backends", "operational", "--json"])
        .args(["--mem-budget", BIG_003_WINDOW_BUDGET, "--spill-dir"])
        .arg(&spill_a.0)
        .output()
        .expect("gam check runs");
    assert!(truth.status.success(), "{}", String::from_utf8_lossy(&truth.stderr));
    let truth_verdict = only_row(&parse_stdout(&truth))
        .get("verdict")
        .and_then(Json::as_str)
        .expect("verdict")
        .to_string();

    // The victim: same run, checkpointed with frequent intra-exploration
    // snapshots, SIGKILLed once the checkpoint shows a snapshot landed.
    let spill_b = Scratch::new("resume-victim-spill");
    let checkpoint = Scratch::new("resume-ckpt");
    let mut child = gam()
        .args(["check"])
        .arg(big_test("big-003.litmus"))
        .args(["--models", "gam", "--backends", "operational", "--json"])
        .args(["--mem-budget", BIG_003_WINDOW_BUDGET, "--spill-dir"])
        .arg(&spill_b.0)
        .args(["--checkpoint"])
        .arg(&checkpoint.0)
        .args(["--checkpoint-every", "2048"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("gam check spawns");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let progressed = std::fs::metadata(&checkpoint.0).map(|m| m.len() > 1_000).unwrap_or(false);
        let exited = child.try_wait().expect("try_wait").is_some();
        if progressed || exited {
            break;
        }
        assert!(Instant::now() < deadline, "check never snapshotted its exploration");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Racing the kill against completion is fine: a finished victim makes
    // the resume a completed-unit replay, which must still match.
    let _ = child.kill();
    let _ = child.wait();

    let resumed = gam()
        .args(["check"])
        .arg(big_test("big-003.litmus"))
        .args(["--models", "gam", "--backends", "operational", "--json"])
        .args(["--mem-budget", BIG_003_WINDOW_BUDGET, "--spill-dir"])
        .arg(&spill_b.0)
        .args(["--checkpoint"])
        .arg(&checkpoint.0)
        .args(["--checkpoint-every", "2048"])
        .output()
        .expect("gam check resumes");
    assert_no_panic(&resumed);
    assert!(resumed.status.success(), "{}", String::from_utf8_lossy(&resumed.stderr));
    assert_eq!(
        only_row(&parse_stdout(&resumed)).get("verdict").and_then(Json::as_str),
        Some(truth_verdict.as_str()),
        "the resumed run must reproduce the uninterrupted verdict"
    );
    // Unless the victim won the race outright, the resume either picked up
    // the in-flight snapshot or replayed the completed unit — both leave
    // their mark on stderr.
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("mid-exploration") || stderr.contains("resuming 1 completed"),
        "the resume must consume the checkpoint: {stderr}"
    );
}
