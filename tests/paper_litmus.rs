//! Integration test: every litmus test that appears as a figure in the paper
//! gets exactly the verdict the paper states, under every model in the
//! catalogue, using the axiomatic checker. The classical tests are checked
//! against the expectation table as well.

use gam::axiomatic::AxiomaticChecker;
use gam::core::{model, ModelKind};
use gam::isa::litmus::library;
use gam::verify::{expectations, ComparisonMatrix};

/// Checks one test against its expectation row under every model.
fn check_against_expectations(test: &gam::isa::litmus::LitmusTest) {
    let expectation = expectations::expectation_for(test.name())
        .unwrap_or_else(|| panic!("no expectation for `{}`", test.name()));
    for kind in ModelKind::ALL {
        let verdict = AxiomaticChecker::new(model::by_kind(kind))
            .check(test)
            .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
        assert_eq!(
            verdict.is_allowed(),
            expectation.allowed(kind),
            "{} under {kind}: expected {}, got {verdict} ({})",
            test.name(),
            if expectation.allowed(kind) { "allowed" } else { "forbidden" },
            expectation.source,
        );
    }
}

#[test]
fn figure_2_dekker() {
    check_against_expectations(&library::dekker());
}

#[test]
fn figure_5_out_of_thin_air() {
    check_against_expectations(&library::oota());
}

#[test]
fn figure_8_store_forwarding() {
    check_against_expectations(&library::store_forwarding());
}

#[test]
fn figure_13a_mp_addr() {
    check_against_expectations(&library::mp_addr());
}

#[test]
fn figure_13b_mp_artificial_addr() {
    check_against_expectations(&library::mp_artificial_addr());
}

#[test]
fn figure_13c_dependency_via_memory() {
    check_against_expectations(&library::mp_mem_dep());
}

#[test]
fn figure_13d_mp_prefetch() {
    check_against_expectations(&library::mp_prefetch());
}

#[test]
fn figure_14a_corr() {
    check_against_expectations(&library::corr());
}

#[test]
fn figure_14b_intervening_store() {
    check_against_expectations(&library::corr_intervening_store());
}

#[test]
fn figure_14c_rsw() {
    check_against_expectations(&library::rsw());
}

#[test]
fn figure_14d_rnsw() {
    check_against_expectations(&library::rnsw());
}

#[test]
fn classical_tests_match_the_expectation_table() {
    for test in library::classic_tests() {
        check_against_expectations(&test);
    }
}

#[test]
fn the_full_matrix_matches_expectations() {
    let matrix = ComparisonMatrix::compute(&library::all_tests()).expect("checkable");
    assert!(
        matrix.matches_expectations(),
        "mismatched rows: {:?}",
        matrix
            .mismatched_rows()
            .iter()
            .map(|r| (r.test.clone(), r.mismatches.clone()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn gam_sits_between_sc_and_gam0() {
    // Monotonicity across the whole library: everything SC allows, GAM allows;
    // everything GAM allows, GAM0 allows.
    for test in library::all_tests() {
        let sc = AxiomaticChecker::new(model::sc()).check(&test).unwrap();
        let gam = AxiomaticChecker::new(model::gam()).check(&test).unwrap();
        let gam0 = AxiomaticChecker::new(model::gam0()).check(&test).unwrap();
        if sc.is_allowed() {
            assert!(gam.is_allowed(), "{}: SC-allowed but GAM-forbidden", test.name());
        }
        if gam.is_allowed() {
            assert!(gam0.is_allowed(), "{}: GAM-allowed but GAM0-forbidden", test.name());
        }
    }
}
