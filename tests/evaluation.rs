//! Integration test of the Section V evaluation pipeline: the workload suite,
//! the simulator and the table/figure harness reproduce the *shape* of the
//! paper's results — the four policies perform within a whisker of each
//! other, kills and stalls are rare, and load-load forwarding almost never
//! hides an L1 miss.

use gam::uarch::config::MemoryModelPolicy;
use gam::uarch::workload::WorkloadSuite;
use gam_bench::{render_fig18, run_suite, table2, table3};

/// A scaled-down run of the full evaluation (small op count keeps CI fast).
fn results() -> Vec<gam_bench::WorkloadResult> {
    run_suite(&WorkloadSuite::small(), 15_000, 42)
}

#[test]
fn figure_18_shape_policies_within_a_few_percent() {
    let results = results();
    for result in &results {
        for policy in
            [MemoryModelPolicy::Arm, MemoryModelPolicy::Gam0, MemoryModelPolicy::AlphaStar]
        {
            let normalized = result.normalized_upc(policy);
            assert!(
                (normalized - 1.0).abs() < 0.10,
                "{} under {policy}: normalized uPC {normalized} strays too far from 1.0",
                result.workload
            );
        }
    }
    let rendered = render_fig18(&results);
    assert!(rendered.contains("average"));
}

#[test]
fn table_2_shape_kills_and_stalls_are_rare() {
    let results = results();
    let table = table2(&results);
    assert!(table.kills_gam_avg < 5.0, "kills/1K uOPs average {}", table.kills_gam_avg);
    assert!(table.stalls_gam_avg < 5.0, "stalls/1K uOPs average {}", table.stalls_gam_avg);
    assert!(table.kills_gam_avg <= table.kills_gam_max);
    assert!(table.stalls_gam_avg <= table.stalls_gam_max);
    // ARM has no kills by construction; its stall machinery matches GAM's.
    for result in &results {
        assert_eq!(result.of(MemoryModelPolicy::Arm).same_addr_load_kills, 0);
        assert_eq!(result.of(MemoryModelPolicy::Gam0).same_addr_load_kills, 0);
        assert_eq!(result.of(MemoryModelPolicy::Gam0).same_addr_load_stalls, 0);
    }
}

#[test]
fn table_3_shape_forwarding_does_not_reduce_misses_much() {
    let results = results();
    let table = table3(&results);
    // Forwardings may or may not be frequent on the small suite, but the miss
    // reduction must be negligible — that is the paper's point.
    assert!(
        table.reduced_misses_avg < 1.0,
        "load-load forwarding should not hide many L1 misses: {}",
        table.reduced_misses_avg
    );
    assert!(table.forwardings_avg >= 0.0);
    // Only Alpha* ever forwards load-to-load.
    for result in &results {
        assert_eq!(result.of(MemoryModelPolicy::Gam).load_load_forwardings, 0);
        assert_eq!(result.of(MemoryModelPolicy::Arm).load_load_forwardings, 0);
        assert_eq!(result.of(MemoryModelPolicy::Gam0).load_load_forwardings, 0);
    }
}

#[test]
fn every_policy_commits_the_same_instruction_stream() {
    for result in results() {
        let committed: Vec<u64> =
            MemoryModelPolicy::ALL.iter().map(|&p| result.of(p).committed_uops).collect();
        assert!(committed.windows(2).all(|w| w[0] == w[1]), "{committed:?}");
    }
}
