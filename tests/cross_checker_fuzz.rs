//! Property-style differential testing between the axiomatic checker and the
//! operational machines on *randomly generated* litmus tests, plus structural
//! properties of the checker outputs.
//!
//! Random program generation is kept small (2 threads, up to 3 memory
//! instructions each, 2 locations) so the exhaustive checkers stay fast while
//! still covering a space of programs far larger than the hand-written
//! library.

use gam::axiomatic::AxiomaticChecker;
use gam::core::{model, ModelKind};
use gam::isa::litmus::LitmusTest;
use gam::isa::prelude::*;
use gam::operational::OperationalChecker;

/// A tiny deterministic pseudo-random generator (xorshift), so this test has
/// no dependency on the `rand` crate's distribution stability.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Generates a random branch-free litmus test over two locations.
fn random_test(seed: u64) -> LitmusTest {
    let mut rng = XorShift(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let locations = [Loc::new("x"), Loc::new("y")];
    let mut threads = Vec::new();
    let mut observed = Vec::new();
    for proc_index in 0..2usize {
        let mut builder = ThreadProgram::builder(ProcId::new(proc_index));
        let instructions = 1 + rng.below(3);
        let mut next_reg = 1u32;
        for _ in 0..instructions {
            let loc = locations[rng.below(2) as usize];
            match rng.below(3) {
                0 => {
                    builder.store(Addr::loc(loc), Operand::imm(1 + rng.below(2)));
                }
                1 => {
                    let reg = Reg::new(next_reg);
                    next_reg += 1;
                    builder.load(reg, Addr::loc(loc));
                    observed.push((ProcId::new(proc_index), reg));
                }
                _ => {
                    let kind = match rng.below(4) {
                        0 => FenceKind::LL,
                        1 => FenceKind::LS,
                        2 => FenceKind::SL,
                        _ => FenceKind::SS,
                    };
                    builder.fence(kind);
                }
            }
        }
        threads.push(builder.build());
    }
    let program = Program::new(threads);
    let mut builder = LitmusTest::builder(format!("fuzz-{seed}"), program)
        .observe_mem(locations[0])
        .observe_mem(locations[1]);
    for (proc, reg) in observed {
        builder = builder.observe_reg(proc, reg);
    }
    builder.build()
}

#[test]
fn axiomatic_and_operational_agree_on_random_programs() {
    for seed in 0..60u64 {
        let test = random_test(seed);
        for kind in [ModelKind::Sc, ModelKind::Tso, ModelKind::Gam, ModelKind::Gam0] {
            let axiomatic = AxiomaticChecker::new(model::by_kind(kind))
                .allowed_outcomes(&test)
                .expect("axiomatic check succeeds");
            let operational = OperationalChecker::new(kind)
                .allowed_outcomes(&test)
                .expect("operational check succeeds");
            assert_eq!(
                axiomatic,
                operational,
                "seed {seed} under {kind}: outcome sets differ\nprogram:\n{}",
                test.program()
            );
        }
    }
}

#[test]
fn stronger_models_allow_fewer_outcomes_on_random_programs() {
    for seed in 0..60u64 {
        let test = random_test(seed);
        let sc = AxiomaticChecker::new(model::sc()).allowed_outcomes(&test).unwrap();
        let tso = AxiomaticChecker::new(model::tso()).allowed_outcomes(&test).unwrap();
        let gam = AxiomaticChecker::new(model::gam()).allowed_outcomes(&test).unwrap();
        let gam_arm = AxiomaticChecker::new(model::gam_arm()).allowed_outcomes(&test).unwrap();
        let gam0 = AxiomaticChecker::new(model::gam0()).allowed_outcomes(&test).unwrap();
        assert!(sc.is_subset(&tso), "seed {seed}: SC ⊄ TSO");
        assert!(tso.is_subset(&gam), "seed {seed}: TSO ⊄ GAM");
        assert!(gam.is_subset(&gam_arm), "seed {seed}: GAM ⊄ GAM-ARM");
        assert!(gam_arm.is_subset(&gam0), "seed {seed}: GAM-ARM ⊄ GAM0");
        assert!(!sc.is_empty(), "seed {seed}: SC must allow at least one outcome");
    }
}
