//! Budgeted checking at corpus-stress scale.
//!
//! The stress corpus (`tests/corpus-stress`) holds the machine-generated
//! tests whose state spaces are big enough that an unbudgeted exploration
//! takes real wall time — exactly the situation the session API's wall
//! budget exists for. These tests pin the contract: a wall-budgeted check
//! of a heavy test comes back `Inconclusive` with partial outcomes, those
//! partial outcomes are a sound under-approximation of the full outcome
//! set, and the blocking API's verdict is unaffected.

use std::time::Duration;

use gam_core::ModelKind;
use gam_engine::{Backend, CheckBudget, Engine, SessionVerdict};
use gam_frontend::parse_litmus;
use gam_isa::litmus::LitmusTest;
use gam_operational::OperationalChecker;

/// The heaviest test of the stress corpus (hundreds of milliseconds of
/// unbudgeted exploration in a debug build) — slow enough that a
/// few-millisecond budget reliably interrupts it mid-flight.
fn heavy_stress_test() -> LitmusTest {
    let text = std::fs::read_to_string("tests/corpus-stress/stress-133.litmus")
        .expect("stress corpus is checked in");
    parse_litmus(&text).expect("stress test parses")
}

#[test]
fn wall_budget_on_a_stress_test_is_inconclusive_with_partial_outcomes() {
    let test = heavy_stress_test();
    let engine = Engine::operational(ModelKind::Gam).expect("operational engine");
    let budget = CheckBudget::none().with_max_wall(Duration::from_millis(5));
    let outcome = engine.check_budgeted(&test, &budget).expect("budgeted check runs");

    let SessionVerdict::Inconclusive { partial_outcomes, states_visited, reason } = outcome.verdict
    else {
        panic!("a 5 ms budget must interrupt this exploration, got {}", outcome.verdict);
    };
    assert!(reason.to_string().contains("wall budget"), "reason: {reason}");
    assert!(states_visited > 0, "the exploration must have started");
    assert!(!partial_outcomes.is_empty(), "partial outcomes must be reported");

    // Soundness: every partial outcome is in the full outcome set — budget
    // exhaustion under-approximates, it never invents behaviors.
    let full = OperationalChecker::new(ModelKind::Gam)
        .explore(&test)
        .expect("unbudgeted exploration")
        .outcomes;
    for outcome in &partial_outcomes {
        assert!(full.contains(outcome), "partial outcome {outcome:?} not in the full set");
    }
}

#[test]
fn generous_budget_matches_the_blocking_api_on_stress_tests() {
    let test = heavy_stress_test();
    for backend in Backend::ALL {
        let engine =
            Engine::builder().model(ModelKind::Gam).backend(backend).build().expect("engine");
        let blocking = engine.check(&test).expect("blocking verdict");
        let budget = CheckBudget::none().with_max_wall(Duration::from_secs(600));
        let budgeted = engine.check_budgeted(&test, &budget).expect("budgeted check");
        assert_eq!(
            budgeted.verdict.as_verdict(),
            Some(blocking),
            "budgeted and blocking verdicts must agree on {backend}"
        );
    }
}
