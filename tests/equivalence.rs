//! Integration test: the axiomatic and operational definitions agree on the
//! complete outcome set of every litmus test in the library, for every model
//! that has an abstract machine (SC, TSO, GAM, GAM0). This is the
//! machine-checkable counterpart of the paper's Section IV equivalence claim.

use gam::core::ModelKind;
use gam::isa::litmus::library;
use gam::verify::EquivalenceReport;

fn assert_equivalent(kind: ModelKind) {
    let tests = library::all_tests();
    let report = EquivalenceReport::compute(&tests, kind);
    assert_eq!(report.results().len(), tests.len());
    assert!(
        report.all_equivalent(),
        "{kind}: axiomatic and operational outcome sets differ:\n{report}"
    );
}

#[test]
fn sc_axiomatic_equals_operational_on_the_whole_library() {
    assert_equivalent(ModelKind::Sc);
}

#[test]
fn tso_axiomatic_equals_operational_on_the_whole_library() {
    assert_equivalent(ModelKind::Tso);
}

#[test]
fn gam_axiomatic_equals_operational_on_the_whole_library() {
    assert_equivalent(ModelKind::Gam);
}

#[test]
fn gam0_axiomatic_equals_operational_on_the_whole_library() {
    assert_equivalent(ModelKind::Gam0);
}
