//! Quickstart: build a litmus test by hand and check it against every memory
//! model through the unified engine facade — then confirm the GAM verdict
//! through the operational backend, using the *same* API.
//!
//! Run with: `cargo run --example quickstart`

use gam::core::{model, ModelKind};
use gam::engine::{Backend, Engine};
use gam::isa::litmus::LitmusTest;
use gam::isa::prelude::*;

fn main() {
    // The message-passing idiom: P1 publishes data then sets a flag,
    // P2 reads the flag then the data. No fences, no dependencies.
    let data = Loc::new("data");
    let flag = Loc::new("flag");

    let mut producer = ThreadProgram::builder(ProcId::new(0));
    producer.store(Addr::loc(data), Operand::imm(42)).store(Addr::loc(flag), Operand::imm(1));

    let mut consumer = ThreadProgram::builder(ProcId::new(1));
    consumer.load(Reg::new(1), Addr::loc(flag)).load(Reg::new(2), Addr::loc(data));

    let program = Program::new(vec![producer.build(), consumer.build()]);
    let test = LitmusTest::builder("mp-quickstart", program)
        .description(
            "message passing without fences: can the consumer see the flag but stale data?",
        )
        .expect_reg(ProcId::new(1), Reg::new(1), 1u64)
        .expect_reg(ProcId::new(1), Reg::new(2), 0u64)
        .build();

    println!("{test}");
    println!("Is the stale-data outcome allowed? (axiomatic engine)");
    for spec in model::all() {
        let engine = Engine::axiomatic(spec.kind());
        let verdict = engine.check(&test).expect("checkable");
        println!("  {:<8} {}", spec.name(), verdict);
    }

    // Cross-check GAM's verdict on the abstract machine: same facade, other
    // backend — the paper's Theorem 1 says the answers must coincide.
    let operational = Engine::builder()
        .model(ModelKind::Gam)
        .backend(Backend::Operational)
        .build()
        .expect("GAM has an abstract machine");
    let outcomes = operational.allowed_outcomes(&test).expect("explorable");
    let witness = operational.find_witness(&test).expect("explorable");
    println!();
    println!(
        "GAM abstract machine ({} backend): {} reachable outcomes, stale-data outcome reachable: {}",
        operational.checker().name(),
        outcomes.len(),
        witness.is_some()
    );
    if let Some(outcome) = witness {
        println!("  witness outcome: {outcome}");
    }
    println!();
    println!("Fix: add a FenceSS on the producer and a FenceLL on the consumer,");
    println!("or make the second load depend on the first (see `mp+addr` in the library).");
}
