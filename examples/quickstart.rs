//! Quickstart: build a litmus test by hand, check it against every memory
//! model axiomatically, and confirm the verdict on the GAM abstract machine.
//!
//! Run with: `cargo run --example quickstart`

use gam::axiomatic::AxiomaticChecker;
use gam::core::model;
use gam::isa::litmus::LitmusTest;
use gam::isa::prelude::*;
use gam::operational::{Explorer, GamMachine};

fn main() {
    // The message-passing idiom: P1 publishes data then sets a flag,
    // P2 reads the flag then the data. No fences, no dependencies.
    let data = Loc::new("data");
    let flag = Loc::new("flag");

    let mut producer = ThreadProgram::builder(ProcId::new(0));
    producer.store(Addr::loc(data), Operand::imm(42)).store(Addr::loc(flag), Operand::imm(1));

    let mut consumer = ThreadProgram::builder(ProcId::new(1));
    consumer.load(Reg::new(1), Addr::loc(flag)).load(Reg::new(2), Addr::loc(data));

    let program = Program::new(vec![producer.build(), consumer.build()]);
    let test = LitmusTest::builder("mp-quickstart", program)
        .description("message passing without fences: can the consumer see the flag but stale data?")
        .expect_reg(ProcId::new(1), Reg::new(1), 1u64)
        .expect_reg(ProcId::new(1), Reg::new(2), 0u64)
        .build();

    println!("{test}");
    println!("Is the stale-data outcome allowed?");
    for spec in model::all() {
        let verdict = AxiomaticChecker::new(spec.clone()).check(&test).expect("checkable");
        println!("  {:<8} {}", spec.name(), verdict);
    }

    // Cross-check GAM's verdict on the operational abstract machine.
    let machine = GamMachine::new(&test);
    let exploration = Explorer::default().explore(&machine).expect("explorable");
    let reachable = exploration.outcomes.iter().any(|o| test.condition().matched_by(o));
    println!();
    println!(
        "GAM abstract machine: explored {} states, {} final outcomes, stale-data outcome reachable: {}",
        exploration.states_visited,
        exploration.outcomes.len(),
        reachable
    );
    println!();
    println!("Fix: add a FenceSS on the producer and a FenceLL on the consumer,");
    println!("or make the second load depend on the first (see `mp+addr` in the library).");
}
