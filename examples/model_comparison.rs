//! Compare the complete allowed-outcome sets of the five models on a chosen
//! litmus test — not just the verdict on the condition of interest, but every
//! final state each model admits. All queries go through the engine facade.
//!
//! Run with: `cargo run --example model_comparison [-- <test-name>]`
//! (default test: `corr`, Figure 14a of the paper).

use gam::core::model;
use gam::engine::Engine;
use gam::isa::litmus::library;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "corr".to_string());
    let Some(test) = library::by_name(&name) else {
        eprintln!("unknown litmus test `{name}`");
        std::process::exit(1);
    };

    println!("{test}");
    for spec in model::all() {
        let engine = Engine::axiomatic(spec.kind());
        let outcomes = engine.allowed_outcomes(&test).expect("checkable");
        println!("{} allows {} outcomes:", spec.name(), outcomes.len());
        for outcome in &outcomes {
            let marker = if test.condition().matched_by(outcome) {
                "   <-- condition of interest"
            } else {
                ""
            };
            println!("  {outcome}{marker}");
        }
        println!();
    }

    println!("Reading the table:");
    println!("  * SC admits the fewest outcomes, GAM0 the most.");
    println!("  * GAM sits between ARM-style and GAM0: it restores per-location SC");
    println!("    (no stale re-read of the same address) without ARM's read-from-based rule.");
}
