//! Run the out-of-order core simulator on a few workloads under all four
//! memory-model policies and print the per-workload statistics that feed
//! Figure 18 and Tables II/III. Before the timing runs, the formal models the
//! policies implement are sanity-checked through the parallel engine facade.
//!
//! Run with: `cargo run --release --example ooo_simulation [-- <ops>]`
//! (default 50_000 micro-ops per workload).

use gam::core::ModelKind;
use gam::engine::Engine;
use gam::isa::litmus::library;
use gam::uarch::config::{MemoryModelPolicy, SimConfig};
use gam::uarch::workload::WorkloadSuite;
use gam::uarch::Simulator;

fn main() {
    let ops: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(50_000);

    // The timing policies implement GAM / GAM-ARM / GAM0 ordering rules; make
    // sure the formal side actually behaves that way before trusting timings.
    let engine = Engine::builder()
        .model(ModelKind::Gam)
        .parallelism(4)
        .build()
        .expect("axiomatic GAM engine");
    let report = engine.run_suite(&library::paper_tests());
    assert!(report.all_ok(), "litmus sanity run failed:\n{report}");
    println!(
        "model sanity via engine facade: {} litmus tests under GAM in {:.0} ms\n",
        report.reports.len(),
        report.wall.as_secs_f64() * 1e3
    );

    let suite = WorkloadSuite::small();
    println!("simulating {} workloads x 4 policies x {ops} micro-ops\n", suite.len());

    for spec in suite.specs() {
        let trace = spec.generate(ops, 42);
        println!(
            "workload `{}` ({} loads, {} stores)",
            spec.name(),
            (trace.load_fraction() * trace.len() as f64) as usize,
            (trace.store_fraction() * trace.len() as f64) as usize
        );
        let mut baseline = None;
        for policy in MemoryModelPolicy::ALL {
            let stats = Simulator::new(SimConfig::haswell_like(policy)).run(&trace);
            let upc = stats.upc();
            let baseline_upc = *baseline.get_or_insert(upc);
            println!(
                "  {:<7} uPC {:.3} ({:+.2}% vs GAM)  kills/1K {:.3}  stalls/1K {:.3}  ld-ld fwd/1K {:.3}  L1 miss {:.1}%",
                policy.to_string(),
                upc,
                (upc / baseline_upc - 1.0) * 100.0,
                stats.kills_per_kilo_uop(),
                stats.stalls_per_kilo_uop(),
                stats.load_load_forwardings_per_kilo_uop(),
                stats.l1_miss_rate() * 100.0,
            );
        }
        println!();
    }
    println!("The headline result of the paper's Section V: the differences between");
    println!("the four policies are negligible, because same-address load pairs that");
    println!("interact inside the instruction window are rare.");
}
