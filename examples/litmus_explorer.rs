//! Explore the full litmus-test library: print every test, every model's
//! verdict, and (for allowed behaviours under GAM) a witness execution.
//! Verdicts and witness outcomes come from the engine facade; the detailed
//! read-from relation and memory order are a backend-specific extra fetched
//! from the axiomatic checker directly (the soft-deprecated direct API
//! remains available exactly for such cases).
//!
//! Run with: `cargo run --example litmus_explorer [-- <test-name | file.litmus>]`
//!
//! The argument may be a library test name *or* a path to a `.litmus` file
//! (anything containing a path separator or ending in `.litmus`), which is
//! parsed through the text frontend — so the example exercises arbitrary
//! user-supplied workloads, not just the built-in library.

use gam::axiomatic::AxiomaticChecker;
use gam::core::model;
use gam::engine::Engine;
use gam::frontend::{parse_litmus, print_litmus};
use gam::isa::litmus::library;
use gam::isa::litmus::LitmusTest;
use gam::verify::ComparisonMatrix;

/// Resolves the argument: a `.litmus` path goes through the text frontend,
/// anything else is looked up in the built-in library.
fn resolve(arg: &str) -> LitmusTest {
    if arg.ends_with(".litmus") || arg.contains(std::path::MAIN_SEPARATOR) {
        let text = std::fs::read_to_string(arg).unwrap_or_else(|err| {
            eprintln!("cannot read {arg}: {err}");
            std::process::exit(1);
        });
        parse_litmus(&text).unwrap_or_else(|err| {
            eprintln!("{arg}: {err}");
            std::process::exit(1);
        })
    } else if let Some(test) = library::by_name(arg) {
        test
    } else {
        eprintln!("unknown litmus test `{arg}`; available tests:");
        for test in library::all_tests() {
            eprintln!("  {}", test.name());
        }
        eprintln!("(or pass a path to a .litmus file)");
        std::process::exit(1);
    }
}

fn main() {
    let filter: Option<String> = std::env::args().nth(1);

    match filter {
        None => {
            let tests = library::all_tests();
            println!("{} litmus tests in the library\n", tests.len());
            let matrix = ComparisonMatrix::compute(&tests).expect("all tests are checkable");
            print!("{matrix}");
            println!();
            println!(
                "Run `cargo run --example litmus_explorer -- <name | file.litmus>` for details \
                 on one test."
            );
        }
        Some(name) => {
            let test = resolve(&name);
            println!("{}", print_litmus(&test));
            for spec in model::all() {
                let engine = Engine::axiomatic(spec.kind());
                let verdict = engine.check(&test).expect("checkable");
                println!("{:<8} {}", spec.name(), verdict);
                if verdict.is_allowed() {
                    // Backend-specific detail: the axiomatic witness carries
                    // the read-from relation and the global memory order on
                    // top of the witnessing outcome.
                    let detailed =
                        AxiomaticChecker::new(spec.clone()).find_witness(&test).expect("checkable");
                    if let Some(witness) = detailed {
                        println!("  witness outcome : {}", witness.outcome);
                        let rf: Vec<String> = witness
                            .rf
                            .iter()
                            .map(|(load, src)| format!("{load} <- {src:?}"))
                            .collect();
                        println!("  read-from       : {}", rf.join(", "));
                        let mo: Vec<String> =
                            witness.memory_order.iter().map(ToString::to_string).collect();
                        println!("  memory order    : {}", mo.join(" -> "));
                    }
                }
            }
        }
    }
}
