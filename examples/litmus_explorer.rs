//! Explore the full litmus-test library: print every test, every model's
//! verdict, and (for allowed behaviours under GAM) a witness execution with
//! its read-from relation and global memory order.
//!
//! Run with: `cargo run --example litmus_explorer [-- <test-name>]`

use gam::axiomatic::AxiomaticChecker;
use gam::core::model;
use gam::isa::litmus::library;
use gam::verify::ComparisonMatrix;

fn main() {
    let filter: Option<String> = std::env::args().nth(1);

    match filter {
        None => {
            let tests = library::all_tests();
            println!("{} litmus tests in the library\n", tests.len());
            let matrix = ComparisonMatrix::compute(&tests).expect("all tests are checkable");
            print!("{matrix}");
            println!();
            println!("Run `cargo run --example litmus_explorer -- <name>` for details on one test.");
        }
        Some(name) => {
            let Some(test) = library::by_name(&name) else {
                eprintln!("unknown litmus test `{name}`; available tests:");
                for test in library::all_tests() {
                    eprintln!("  {}", test.name());
                }
                std::process::exit(1);
            };
            println!("{test}");
            for spec in model::all() {
                let checker = AxiomaticChecker::new(spec.clone());
                let verdict = checker.check(&test).expect("checkable");
                println!("{:<8} {}", spec.name(), verdict);
                if verdict.is_allowed() {
                    if let Some(witness) = checker.find_witness(&test).expect("checkable") {
                        println!("  witness outcome : {}", witness.outcome);
                        let rf: Vec<String> = witness
                            .rf
                            .iter()
                            .map(|(load, src)| format!("{load} <- {src:?}"))
                            .collect();
                        println!("  read-from       : {}", rf.join(", "));
                        let mo: Vec<String> =
                            witness.memory_order.iter().map(ToString::to_string).collect();
                        println!("  memory order    : {}", mo.join(" -> "));
                    }
                }
            }
        }
    }
}
