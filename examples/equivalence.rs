//! Machine-checked counterpart of the paper's axiomatic/operational
//! equivalence claim (Section IV): for every litmus test in the library and
//! every model with an abstract machine (SC, TSO, GAM, GAM0), the complete
//! outcome set of the axiomatic enumerator must equal the set of outcomes
//! reachable on the operational machine.
//!
//! Since the engine redesign, `verify::EquivalenceReport` *is* this check:
//! it drives both backends through the same `Checker` trait — one parallel
//! engine per backend — and diffs the complete outcome sets. This example
//! just runs it per model and prints any mismatching outcomes in full.
//!
//! Run with: `cargo run --release --example equivalence`

use gam::core::ModelKind;
use gam::isa::litmus::library;
use gam::verify::EquivalenceReport;

fn main() {
    let tests = library::all_tests();
    println!("comparing axiomatic and operational outcome sets on {} litmus tests...", tests.len());
    let mut total = 0;
    let mut mismatched = 0;
    for kind in [ModelKind::Sc, ModelKind::Tso, ModelKind::Gam, ModelKind::Gam0] {
        let report = EquivalenceReport::compute(&tests, kind);
        let bad = report.mismatches().len();
        total += report.results().len();
        mismatched += bad;
        println!("  {kind:<5} {} tests, {} mismatches", report.results().len(), bad);
        for mismatch in report.mismatches() {
            // EquivalenceResult::Display names every outcome each backend
            // claims exclusively — the detail needed to debug a divergence.
            println!("    {mismatch}");
        }
    }
    println!();
    if mismatched == 0 {
        println!("all {total} comparisons agree: the two semantics coincide on the litmus library");
    } else {
        println!("{mismatched} of {total} comparisons disagree — investigate above");
        std::process::exit(1);
    }
}
